// Network front-end tests: THL1 protocol framing (round-trips, partial
// reassembly at every split point, hostile-frame rejection), the event
// loop backend selection, and the loopback end-to-end path — including
// the acceptance pin that socket-served detections are bitwise equal to
// in-process Server::Submit on the same model.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "base/net_util.h"
#include "core/detector.h"
#include "darknet/model_zoo.h"
#include "data/food_classes.h"
#include "data/renderer.h"
#include "net/client.h"
#include "net/event_loop.h"
#include "net/net_server.h"
#include "net/protocol.h"
#include "serve/router.h"

namespace thali {
namespace net {
namespace {

serve::Server::DetectorFactory YoloFactory(uint64_t seed = 7) {
  return [seed] {
    return Detector::FromCfg(YoloThaliCfg(YoloThaliOptions{}), seed);
  };
}

Image RenderPlatter(uint64_t seed = 11, int dishes = 3) {
  PlatterRenderer renderer(IndianFood10(), PlatterRenderer::Options{});
  Rng rng(seed);
  return renderer.RenderRandomPlatter(dishes, rng).image;
}

void ExpectSameDetections(const std::vector<Detection>& a,
                          const std::vector<Detection>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].class_id, b[i].class_id);
    EXPECT_EQ(a[i].confidence, b[i].confidence);  // bitwise, not NEAR
    EXPECT_EQ(a[i].box.x, b[i].box.x);
    EXPECT_EQ(a[i].box.y, b[i].box.y);
    EXPECT_EQ(a[i].box.w, b[i].box.w);
    EXPECT_EQ(a[i].box.h, b[i].box.h);
  }
}

// ------------------------------------------------------------- protocol --

TEST(ProtocolTest, DetectRequestRoundTripIsBitwiseLossless) {
  DetectRequest req;
  req.priority = serve::Priority::kBatch;
  req.deadline_ms = 750;
  req.model_id = "ssd-baseline";
  req.image = RenderPlatter();

  const std::vector<uint8_t> payload = EncodeDetectRequest(req);
  DetectRequest back;
  ASSERT_TRUE(DecodeDetectRequest(payload, &back).ok());
  EXPECT_EQ(back.priority, serve::Priority::kBatch);
  EXPECT_EQ(back.deadline_ms, 750u);
  EXPECT_EQ(back.model_id, "ssd-baseline");
  ASSERT_EQ(back.image.width(), req.image.width());
  ASSERT_EQ(back.image.height(), req.image.height());
  ASSERT_EQ(back.image.channels(), req.image.channels());
  for (int i = 0; i < req.image.size(); ++i) {
    ASSERT_EQ(back.image.data()[i], req.image.data()[i]) << "pixel " << i;
  }
}

TEST(ProtocolTest, DetectResponseRoundTripCarriesBoxesAndStatus) {
  std::vector<Detection> dets(2);
  dets[0].class_id = 3;
  dets[0].confidence = 0.875f;
  dets[0].box = {0.25f, 0.5f, 0.125f, 0.0625f};
  dets[1].class_id = 7;
  dets[1].confidence = 0.5f;
  dets[1].box = {0.75f, 0.1f, 0.3f, 0.2f};

  std::vector<uint8_t> frame = EncodeDetectResponse(Status::OK(), dets);
  FrameHeader header;
  ASSERT_TRUE(ParseHeader(frame, &header).ok());
  EXPECT_EQ(header.op, static_cast<uint16_t>(Op::kDetect));
  Status wire;
  std::vector<Detection> back;
  ASSERT_TRUE(DecodeDetectResponse(
                  std::span<const uint8_t>(frame).subspan(kHeaderBytes),
                  &wire, &back)
                  .ok());
  ASSERT_TRUE(wire.ok());
  ExpectSameDetections(back, dets);

  // A rejection travels as its status, with no detection body.
  frame = EncodeDetectResponse(
      Status::ResourceExhausted("batch work shed"), {});
  ASSERT_TRUE(ParseHeader(frame, &header).ok());
  ASSERT_TRUE(DecodeDetectResponse(
                  std::span<const uint8_t>(frame).subspan(kHeaderBytes),
                  &wire, &back)
                  .ok());
  EXPECT_EQ(wire.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(wire.message(), "batch work shed");
  EXPECT_TRUE(back.empty());
}

TEST(ProtocolTest, FrameReaderReassemblesAtEverySplitPoint) {
  const std::vector<uint8_t> ping_payload = {1, 2, 3, 4, 5};
  const std::vector<uint8_t> frame = EncodeFrame(Op::kPing, ping_payload);

  for (size_t split = 0; split <= frame.size(); ++split) {
    SCOPED_TRACE("split=" + std::to_string(split));
    FrameReader reader;
    FrameHeader header;
    std::vector<uint8_t> payload;

    ASSERT_TRUE(reader
                    .Feed(std::span<const uint8_t>(frame.data(), split))
                    .ok());
    if (split < frame.size()) {
      EXPECT_FALSE(reader.NextFrame(&header, &payload));
      ASSERT_TRUE(reader
                      .Feed(std::span<const uint8_t>(frame.data() + split,
                                                     frame.size() - split))
                      .ok());
    }
    ASSERT_TRUE(reader.NextFrame(&header, &payload));
    EXPECT_EQ(header.op, static_cast<uint16_t>(Op::kPing));
    EXPECT_EQ(payload, ping_payload);
    EXPECT_FALSE(reader.NextFrame(&header, &payload));
  }
}

TEST(ProtocolTest, FrameReaderDrainsBackToBackFrames) {
  std::vector<uint8_t> stream = EncodeFrame(Op::kPing, {{9}});
  const std::vector<uint8_t> second = EncodeFrame(Op::kStats, {});
  stream.insert(stream.end(), second.begin(), second.end());

  FrameReader reader;
  ASSERT_TRUE(reader.Feed(stream).ok());
  FrameHeader header;
  std::vector<uint8_t> payload;
  ASSERT_TRUE(reader.NextFrame(&header, &payload));
  EXPECT_EQ(header.op, static_cast<uint16_t>(Op::kPing));
  EXPECT_EQ(payload, std::vector<uint8_t>{9});
  ASSERT_TRUE(reader.NextFrame(&header, &payload));
  EXPECT_EQ(header.op, static_cast<uint16_t>(Op::kStats));
  EXPECT_TRUE(payload.empty());
  EXPECT_FALSE(reader.NextFrame(&header, &payload));
}

TEST(ProtocolTest, BadMagicIsAStickyFramingError) {
  std::vector<uint8_t> bogus(kHeaderBytes, 0xAB);
  FrameReader reader;
  Status fed = reader.Feed(bogus);
  EXPECT_EQ(fed.code(), StatusCode::kCorruption);
  // Sticky: even a valid frame afterwards is refused.
  const std::vector<uint8_t> good = EncodeFrame(Op::kPing, {});
  EXPECT_EQ(reader.Feed(good).code(), StatusCode::kCorruption);
  FrameHeader header;
  std::vector<uint8_t> payload;
  EXPECT_FALSE(reader.NextFrame(&header, &payload));
}

TEST(ProtocolTest, OversizedPayloadLengthRejectedFromHeaderAlone) {
  std::vector<uint8_t> header_bytes;
  AppendU32(&header_bytes, kMagic);
  AppendU16(&header_bytes, kProtocolVersion);
  AppendU16(&header_bytes, static_cast<uint16_t>(Op::kDetect));
  AppendU32(&header_bytes, kMaxPayloadBytes + 1);

  FrameHeader header;
  EXPECT_EQ(ParseHeader(header_bytes, &header).code(),
            StatusCode::kResourceExhausted);
  // The reader flags it as soon as the header is complete — no need to
  // stream 16MB of garbage first.
  FrameReader reader;
  EXPECT_EQ(reader.Feed(header_bytes).code(),
            StatusCode::kResourceExhausted);
}

TEST(ProtocolTest, VersionMismatchRejected) {
  std::vector<uint8_t> header_bytes;
  AppendU32(&header_bytes, kMagic);
  AppendU16(&header_bytes, kProtocolVersion + 1);
  AppendU16(&header_bytes, static_cast<uint16_t>(Op::kPing));
  AppendU32(&header_bytes, 0);
  FrameHeader header;
  EXPECT_EQ(ParseHeader(header_bytes, &header).code(),
            StatusCode::kUnimplemented);
}

TEST(ProtocolTest, TruncatedDetectPayloadRejected) {
  DetectRequest req;
  req.image = RenderPlatter();
  std::vector<uint8_t> payload = EncodeDetectRequest(req);
  payload.resize(payload.size() - 7);  // lop off pixel bytes
  DetectRequest back;
  EXPECT_EQ(DecodeDetectRequest(payload, &back).code(),
            StatusCode::kCorruption);
}

// ----------------------------------------------------------- event loop --

TEST(EventLoopTest, EnvForcesPollBackend) {
  setenv("THALI_NET_POLL", "1", 1);
  auto loop = EventLoop::Create();
  unsetenv("THALI_NET_POLL");
  ASSERT_TRUE(loop.ok());
  EXPECT_EQ(loop->backend(), EventLoop::Backend::kPoll);
}

// ------------------------------------------------------------- loopback --

class NetServerTest : public ::testing::Test {
 protected:
  void StartServer(int yolo_workers = 1) {
    serve::Server::Options opts;
    opts.num_workers = yolo_workers;
    opts.queue_capacity = 16;
    opts.max_batch_size = 4;
    THALI_CHECK_OK(router_.AddModel("yolo", opts, YoloFactory(/*seed=*/7)));
    auto server = NetServer::Start(NetServer::Options{}, &router_);
    THALI_CHECK(server.ok()) << server.status().ToString();
    server_ = std::move(server).value();
  }

  serve::ModelRouter router_;
  std::unique_ptr<NetServer> server_;
};

TEST_F(NetServerTest, PingRoundTrips) {
  StartServer();
  auto client = NetClient::Connect(server_->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_EQ(server_->counters().pings.load(), 1);
}

// The acceptance pin: detections served over the socket are bitwise
// identical to the in-process submit path on the same server (raw f32
// pixels on the wire, deterministic detector).
TEST_F(NetServerTest, LoopbackDetectionsBitwiseEqualInProcessSubmit) {
  StartServer();
  Image image = RenderPlatter(/*seed=*/23);

  auto in_process = router_.Find("yolo")->Submit(Image(image));
  ASSERT_TRUE(in_process.ok());
  serve::Server::Result direct = in_process->get();
  ASSERT_TRUE(direct.ok());

  auto client = NetClient::Connect(server_->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  DetectRequest req;
  req.image = std::move(image);
  auto served = client->Detect(req);
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  ASSERT_FALSE(served->empty());  // a platter with dishes must detect > 0
  ExpectSameDetections(*served, *direct);
}

TEST_F(NetServerTest, PriorityDeadlineAndModelIdTravelOnTheWire) {
  StartServer();
  auto client = NetClient::Connect(server_->port());
  ASSERT_TRUE(client.ok());

  DetectRequest req;
  req.image = RenderPlatter();
  req.priority = serve::Priority::kBatch;
  req.deadline_ms = 10'000;
  ASSERT_TRUE(client->Detect(req).ok());
  EXPECT_EQ(router_.Find("yolo")
                ->metrics()
                .ForClass(serve::Priority::kBatch)
                .submitted.load(),
            1);

  // An unknown model id is a routed rejection, not a dead connection.
  req.image = RenderPlatter();
  req.model_id = "no-such-model";
  auto miss = client->Detect(req);
  EXPECT_EQ(miss.status().code(), StatusCode::kNotFound);
  // The connection survives to serve the next request.
  req.model_id.clear();
  EXPECT_TRUE(client->Detect(req).ok());
}

TEST_F(NetServerTest, StatsOpReturnsRouterAndNetJson) {
  StartServer();
  auto client = NetClient::Connect(server_->port());
  ASSERT_TRUE(client.ok());
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (const char* key : {"\"router\"", "\"yolo\"", "\"net\"",
                          "\"weights_generation\"", "\"frames_received\""}) {
    EXPECT_NE(stats->find(key), std::string::npos) << key;
  }
}

TEST_F(NetServerTest, UnknownOpGetsStatusReplyNotDisconnect) {
  StartServer();
  auto fd = ConnectLoopback(server_->port());
  ASSERT_TRUE(fd.ok());
  const std::vector<uint8_t> frame =
      EncodeFrame(static_cast<Op>(99), {});
  ASSERT_TRUE(SendAll(*fd, frame.data(), frame.size()).ok());

  uint8_t header_bytes[kHeaderBytes];
  ASSERT_TRUE(RecvAll(*fd, header_bytes, kHeaderBytes).ok());
  FrameHeader header;
  ASSERT_TRUE(
      ParseHeader(std::span<const uint8_t>(header_bytes, kHeaderBytes),
                  &header)
          .ok());
  EXPECT_EQ(header.op, 99);  // responses echo the request op
  std::vector<uint8_t> payload(header.payload_len);
  ASSERT_TRUE(RecvAll(*fd, payload.data(), payload.size()).ok());
  Status wire;
  std::vector<Detection> none;
  ASSERT_TRUE(DecodeDetectResponse(payload, &wire, &none).ok());
  EXPECT_EQ(wire.code(), StatusCode::kUnimplemented);
  CloseFd(*fd);
}

TEST_F(NetServerTest, MalformedFrameCutsOnlyThatConnection) {
  StartServer();
  auto bad = ConnectLoopback(server_->port());
  ASSERT_TRUE(bad.ok());
  const std::vector<uint8_t> garbage(kHeaderBytes, 0xEE);
  ASSERT_TRUE(SendAll(*bad, garbage.data(), garbage.size()).ok());
  uint8_t byte;
  // The server closes the framing-broken peer without replying.
  EXPECT_EQ(RecvAll(*bad, &byte, 1).code(), StatusCode::kUnavailable);
  CloseFd(*bad);

  // A well-behaved client on the same server is unaffected.
  auto client = NetClient::Connect(server_->port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Ping().ok());
}

TEST_F(NetServerTest, ServesUnderForcedPollBackend) {
  setenv("THALI_NET_POLL", "1", 1);
  StartServer();
  unsetenv("THALI_NET_POLL");
  ASSERT_EQ(server_->backend(), EventLoop::Backend::kPoll);

  auto client = NetClient::Connect(server_->port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Ping().ok());
  DetectRequest req;
  req.image = RenderPlatter();
  EXPECT_TRUE(client->Detect(req).ok());
}

}  // namespace
}  // namespace net
}  // namespace thali
