#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "base/file_util.h"
#include "base/rng.h"
#include "base/status.h"
#include "base/statusor.h"
#include "base/string_util.h"
#include "base/table_printer.h"

namespace thali {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad width");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad width");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad width");
}

TEST(Status, FactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(Status, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::NotFound("gone"); };
  auto outer = [&]() -> Status {
    THALI_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, AssignOrReturnUnwraps) {
  auto f = [](bool fail) -> StatusOr<int> {
    if (fail) return Status::Internal("boom");
    return 7;
  };
  auto g = [&](bool fail) -> StatusOr<int> {
    THALI_ASSIGN_OR_RETURN(int x, f(fail));
    return x + 1;
  };
  EXPECT_EQ(*g(false), 8);
  EXPECT_EQ(g(true).status().code(), StatusCode::kInternal);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, FloatInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float f = rng.NextFloat();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(Rng, IntRangeInclusive) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.NextInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const float g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, WeightedSamplingRespectsWeights) {
  Rng rng(13);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.NextWeighted(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(StringUtil, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtil, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtil, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t\n"), "");
}

TEST(StringUtil, JoinAndAffixes) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_TRUE(StartsWith("convolutional", "conv"));
  EXPECT_FALSE(StartsWith("conv", "convolutional"));
  EXPECT_TRUE(EndsWith("image.ppm", ".ppm"));
  EXPECT_EQ(ToLower("MiXeD"), "mixed");
}

TEST(StringUtil, ParseIntStrict) {
  EXPECT_EQ(*ParseInt("42"), 42);
  EXPECT_EQ(*ParseInt(" -7 "), -7);
  EXPECT_FALSE(ParseInt("4.2").ok());
  EXPECT_FALSE(ParseInt("x").ok());
  EXPECT_FALSE(ParseInt("").ok());
}

TEST(StringUtil, ParseFloatStrict) {
  EXPECT_FLOAT_EQ(*ParseFloat("0.25"), 0.25f);
  EXPECT_FLOAT_EQ(*ParseFloat("-1e-3"), -1e-3f);
  EXPECT_FALSE(ParseFloat("1.0x").ok());
}

TEST(StringUtil, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(FileUtil, WriteReadRoundtrip) {
  const std::string path = testing::TempDir() + "/thali_file_test.bin";
  const std::string payload("binary\0data\n\xff ok", 16);
  ASSERT_TRUE(WriteStringToFile(path, payload).ok());
  auto back = ReadFileToString(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, payload);
  std::remove(path.c_str());
}

TEST(FileUtil, ReadMissingFileFails) {
  EXPECT_EQ(ReadFileToString("/nonexistent/definitely/missing").status().code(),
            StatusCode::kIOError);
}

TEST(FileUtil, ReadLines) {
  const std::string path = testing::TempDir() + "/thali_lines_test.txt";
  ASSERT_TRUE(WriteStringToFile(path, "one\ntwo\r\nthree\n").ok());
  auto lines = ReadLines(path);
  ASSERT_TRUE(lines.ok());
  EXPECT_EQ(*lines, (std::vector<std::string>{"one", "two", "three"}));
  std::remove(path.c_str());
}

TEST(FileUtil, JoinPath) {
  EXPECT_EQ(JoinPath("a", "b"), "a/b");
  EXPECT_EQ(JoinPath("a/", "/b"), "a/b");
  EXPECT_EQ(JoinPath("", "b"), "b");
  EXPECT_EQ(JoinPath("a", ""), "a");
}

TEST(FileUtil, MakeDirsAndExists) {
  const std::string dir = testing::TempDir() + "/thali_mkdir/x/y";
  ASSERT_TRUE(MakeDirs(dir).ok());
  EXPECT_TRUE(PathExists(dir));
}

TEST(TablePrinter, RendersAlignedTable) {
  TablePrinter t("Title");
  t.SetHeader({"Class", "AP"});
  t.AddRow({"Biryani", "93.0"});
  t.AddRow({"Chapati", "79.4"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("| Biryani | 93.0 |"), std::string::npos);
  EXPECT_NE(out.find("| Chapati | 79.4 |"), std::string::npos);
}

}  // namespace
}  // namespace thali
