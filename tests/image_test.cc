#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "base/rng.h"
#include "image/draw.h"
#include "image/image.h"
#include "base/file_util.h"
#include "image/image_io.h"

namespace thali {
namespace {

float MaxDiff(const Image& a, const Image& b) {
  float m = 0.0f;
  for (int64_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a.data()[i] - b.data()[i]));
  }
  return m;
}

Image RandomImage(int w, int h, uint64_t seed) {
  Image img(w, h, 3);
  Rng rng(seed);
  for (int64_t i = 0; i < img.size(); ++i) img.data()[i] = rng.NextFloat();
  return img;
}

TEST(Image, PixelAccessors) {
  Image img(4, 3, 3);
  img.SetPixel(1, 2, Color{0.1f, 0.5f, 0.9f});
  const Color c = img.GetPixel(1, 2);
  EXPECT_FLOAT_EQ(c.r, 0.1f);
  EXPECT_FLOAT_EQ(c.g, 0.5f);
  EXPECT_FLOAT_EQ(c.b, 0.9f);
}

TEST(Image, OutOfBoundsAccessIsSafe) {
  Image img(4, 3, 3);
  img.SetPixel(-1, 0, Color{1, 1, 1});
  img.SetPixel(0, 99, Color{1, 1, 1});
  EXPECT_EQ(img.GetClipped(0, -5, 2), 0.0f);
  EXPECT_EQ(img.GetClipped(0, 0, 100), 0.0f);
  for (int64_t i = 0; i < img.size(); ++i) EXPECT_EQ(img.data()[i], 0.0f);
}

TEST(Image, BlendPixel) {
  Image img(2, 2, 3);
  img.SetPixel(0, 0, Color{0, 0, 0});
  img.BlendPixel(0, 0, Color{1, 1, 1}, 0.25f);
  EXPECT_FLOAT_EQ(img.GetPixel(0, 0).r, 0.25f);
}

TEST(Image, FillColor) {
  Image img(3, 3, 3);
  img.FillColor(Color{0.2f, 0.4f, 0.6f});
  EXPECT_FLOAT_EQ(img.at(0, 2, 2), 0.2f);
  EXPECT_FLOAT_EQ(img.at(1, 0, 0), 0.4f);
  EXPECT_FLOAT_EQ(img.at(2, 1, 1), 0.6f);
}

TEST(Resize, IdentityWhenSameSize) {
  Image img = RandomImage(8, 6, 1);
  Image out = Resize(img, 8, 6);
  for (int64_t i = 0; i < img.size(); ++i) {
    EXPECT_NEAR(out.data()[i], img.data()[i], 1e-6f);
  }
}

TEST(Resize, ConstantImageStaysConstant) {
  Image img(5, 5, 3);
  img.FillColor(Color{0.3f, 0.3f, 0.3f});
  Image out = Resize(img, 13, 7);
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out.data()[i], 0.3f, 1e-6f);
  }
}

TEST(Resize, PreservesCorners) {
  Image img = RandomImage(6, 6, 2);
  Image out = Resize(img, 12, 12);
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(out.at(c, 0, 0), img.at(c, 0, 0), 1e-6f);
    EXPECT_NEAR(out.at(c, 11, 11), img.at(c, 5, 5), 1e-6f);
  }
}

TEST(LetterboxTest, SquareImageNoPadding) {
  Image img = RandomImage(10, 10, 3);
  Letterbox lb = LetterboxImage(img, 20, 20);
  EXPECT_EQ(lb.pad_x, 0);
  EXPECT_EQ(lb.pad_y, 0);
  EXPECT_FLOAT_EQ(lb.scale, 2.0f);
}

TEST(LetterboxTest, WideImagePadsVertically) {
  Image img = RandomImage(20, 10, 4);
  Letterbox lb = LetterboxImage(img, 16, 16);
  EXPECT_EQ(lb.pad_x, 0);
  EXPECT_EQ(lb.pad_y, 4);  // (16 - 10*0.8)/2
  EXPECT_FLOAT_EQ(lb.scale, 0.8f);
  // Padding rows are grey.
  EXPECT_FLOAT_EQ(lb.image.at(0, 0, 0), 0.5f);
  EXPECT_FLOAT_EQ(lb.image.at(2, 15, 15), 0.5f);
}

TEST(Hsv, RoundTripsRgb) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const float r = rng.NextFloat(), g = rng.NextFloat(), b = rng.NextFloat();
    float h, s, v, r2, g2, b2;
    RgbToHsv(r, g, b, &h, &s, &v);
    HsvToRgb(h, s, v, &r2, &g2, &b2);
    EXPECT_NEAR(r, r2, 1e-4f);
    EXPECT_NEAR(g, g2, 1e-4f);
    EXPECT_NEAR(b, b2, 1e-4f);
  }
}

TEST(Hsv, KnownValues) {
  float h, s, v;
  RgbToHsv(1, 0, 0, &h, &s, &v);  // pure red
  EXPECT_NEAR(h, 0.0f, 1e-5f);
  EXPECT_NEAR(s, 1.0f, 1e-5f);
  EXPECT_NEAR(v, 1.0f, 1e-5f);
  RgbToHsv(0, 1, 0, &h, &s, &v);  // pure green
  EXPECT_NEAR(h, 1.0f / 3.0f, 1e-5f);
}

TEST(Hsv, DistortIdentityWhenNeutral) {
  Image img = RandomImage(6, 6, 6);
  Image copy = img;
  DistortImageHsv(img, 0.0f, 1.0f, 1.0f);
  for (int64_t i = 0; i < img.size(); ++i) {
    EXPECT_NEAR(img.data()[i], copy.data()[i], 1e-4f);
  }
}

TEST(FlipTest, HorizontalFlipIsInvolution) {
  Image img = RandomImage(7, 5, 7);
  Image copy = img;
  FlipHorizontal(img);
  EXPECT_NE(MaxDiff(img, copy), 0.0f);
  FlipHorizontal(img);
  EXPECT_EQ(MaxDiff(img, copy), 0.0f);
}

TEST(FlipTest, MirrorsPixels) {
  Image img(3, 1, 3);
  img.SetPixel(0, 0, Color{1, 0, 0});
  img.SetPixel(0, 2, Color{0, 0, 1});
  FlipHorizontal(img);
  EXPECT_FLOAT_EQ(img.GetPixel(0, 0).b, 1.0f);
  EXPECT_FLOAT_EQ(img.GetPixel(0, 2).r, 1.0f);
}

TEST(PasteCrop, RoundTrip) {
  Image src = RandomImage(4, 4, 8);
  Image dst(10, 10, 3);
  Paste(src, 3, 2, dst);
  Image back = Crop(dst, 3, 2, 4, 4);
  for (int64_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(back.data()[i], src.data()[i]);
  }
}

TEST(PasteCrop, ClippedPasteIsSafe) {
  Image src = RandomImage(4, 4, 9);
  Image dst(5, 5, 3);
  Paste(src, -2, -2, dst);  // partially off-canvas
  Paste(src, 4, 4, dst);
  EXPECT_EQ(dst.at(0, 0, 0), src.at(0, 2, 2));
}

TEST(Draw, EllipseStaysInsideBoundingBox) {
  Image img(20, 20, 3);
  DrawEllipse(img, 10, 10, 4, 3, 0.5f, Color{1, 1, 1}, 0.0f);
  // Nothing drawn outside radius 5 of center.
  for (int y = 0; y < 20; ++y) {
    for (int x = 0; x < 20; ++x) {
      const float d = std::hypot(x + 0.5f - 10.0f, y + 0.5f - 10.0f);
      if (d > 5.5f) EXPECT_EQ(img.at(0, y, x), 0.0f) << x << "," << y;
    }
  }
  // Center is painted.
  EXPECT_EQ(img.at(0, 10, 10), 1.0f);
}

TEST(Draw, RingHasHole) {
  Image img(21, 21, 3);
  DrawRing(img, 10, 10, 8, 8, 0.0f, 0.6f, Color{1, 1, 1}, 0.0f);
  EXPECT_EQ(img.at(0, 10, 10), 0.0f);       // hole
  EXPECT_EQ(img.at(0, 10, 10 + 6), 1.0f);   // in the band
}

TEST(Draw, RectOutline) {
  Image img(10, 10, 3);
  DrawRect(img, 2, 2, 7, 7, Color{1, 0, 0});
  EXPECT_EQ(img.at(0, 2, 4), 1.0f);
  EXPECT_EQ(img.at(0, 4, 4), 0.0f);  // interior untouched
}

TEST(Draw, FilledRectClipsToImage) {
  Image img(5, 5, 3);
  DrawFilledRect(img, -10, -10, 100, 1, Color{0, 1, 0});
  EXPECT_EQ(img.at(1, 0, 0), 1.0f);
  EXPECT_EQ(img.at(1, 1, 4), 1.0f);
  EXPECT_EQ(img.at(1, 2, 0), 0.0f);
}

TEST(ImageIo, PpmRoundTrip) {
  Image img = RandomImage(9, 7, 10);
  const std::string path = testing::TempDir() + "/thali_io_test.ppm";
  ASSERT_TRUE(WritePpm(img, path).ok());
  auto back = ReadPpm(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->width(), 9);
  EXPECT_EQ(back->height(), 7);
  // 8-bit quantization: within 1/255 everywhere.
  for (int64_t i = 0; i < img.size(); ++i) {
    EXPECT_NEAR(back->data()[i], img.data()[i], 1.0f / 255.0f + 1e-5f);
  }
  std::remove(path.c_str());
}

TEST(ImageIo, PpmRejectsGarbage) {
  const std::string path = testing::TempDir() + "/thali_bad.ppm";
  ASSERT_TRUE(WriteStringToFile(path, "not a ppm at all").ok());
  EXPECT_FALSE(ReadPpm(path).ok());
  std::remove(path.c_str());
}

TEST(ImageIo, PpmRejectsTruncatedData) {
  const std::string path = testing::TempDir() + "/thali_trunc.ppm";
  ASSERT_TRUE(WriteStringToFile(path, "P6\n4 4\n255\nxy").ok());
  EXPECT_FALSE(ReadPpm(path).ok());
  std::remove(path.c_str());
}

TEST(ImageIo, BmpHasValidHeader) {
  Image img = RandomImage(5, 4, 11);
  const std::string path = testing::TempDir() + "/thali_io_test.bmp";
  ASSERT_TRUE(WriteBmp(img, path).ok());
  auto raw = ReadFileToString(path);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ((*raw)[0], 'B');
  EXPECT_EQ((*raw)[1], 'M');
  // 54-byte header + 4 rows of 16 bytes (5*3 padded to 16).
  EXPECT_EQ(raw->size(), 54u + 4u * 16u);
  std::remove(path.c_str());
}

TEST(ImageIo, AsciiArtHasExpectedGeometry) {
  Image img(64, 32, 3);
  img.FillColor(Color{1, 1, 1});
  const std::string art = AsciiArt(img, 32);
  // 32 cols -> rows = 32 * 0.5 * 0.5 = 8 lines of 32 chars + newline.
  int lines = 0;
  for (char c : art) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 8);
  EXPECT_EQ(art.find(' '), std::string::npos);  // white image: densest glyph
}

}  // namespace
}  // namespace thali
