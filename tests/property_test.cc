// Randomized property tests across module boundaries: invariants that
// must hold for *any* input, checked over seeded random sweeps. These
// complement the example-based tests with fuzz-lite coverage of the
// parsing/serialization surfaces.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "base/file_util.h"
#include "base/rng.h"
#include "darknet/cfg.h"
#include "darknet/weights_io.h"
#include "data/augment.h"
#include "data/food_classes.h"
#include "data/renderer.h"
#include "eval/detection.h"
#include "eval/metrics.h"
#include "nn/optimizer.h"

namespace thali {
namespace {

std::vector<Detection> RandomDetections(Rng& rng, int n, int classes) {
  std::vector<Detection> dets(static_cast<size_t>(n));
  for (auto& d : dets) {
    d.box = Box{rng.NextFloat(), rng.NextFloat(), rng.NextFloat(0.02f, 0.5f),
                rng.NextFloat(0.02f, 0.5f)};
    d.class_id = rng.NextInt(0, classes - 1);
    d.confidence = rng.NextFloat();
  }
  return dets;
}

TEST(NmsProperty, Idempotent) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    auto dets = RandomDetections(rng, rng.NextInt(0, 60), 4);
    auto once = Nms(dets, 0.45f);
    auto twice = Nms(once, 0.45f);
    ASSERT_EQ(once.size(), twice.size());
    for (size_t i = 0; i < once.size(); ++i) {
      EXPECT_EQ(once[i].confidence, twice[i].confidence);
    }
  }
}

TEST(NmsProperty, SurvivorsRespectThreshold) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    auto kept = Nms(RandomDetections(rng, 50, 3), 0.45f);
    for (size_t i = 0; i < kept.size(); ++i) {
      for (size_t j = i + 1; j < kept.size(); ++j) {
        if (kept[i].class_id != kept[j].class_id) continue;
        EXPECT_LE(Iou(kept[i].box, kept[j].box), 0.45f + 1e-6f);
      }
    }
  }
}

TEST(NmsProperty, NeverIncreasesCount) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    auto dets = RandomDetections(rng, rng.NextInt(1, 80), 5);
    EXPECT_LE(Nms(dets, 0.3f).size(), dets.size());
    // Lower threshold suppresses at least as much.
    EXPECT_LE(Nms(dets, 0.3f).size(), Nms(dets, 0.7f).size());
  }
}

TEST(EvaluateProperty, MetricsAlwaysBounded) {
  Rng rng(4);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<ImageEval> images(static_cast<size_t>(rng.NextInt(1, 4)));
    for (auto& img : images) {
      img.detections = RandomDetections(rng, rng.NextInt(0, 20), 3);
      const int truths = rng.NextInt(0, 5);
      for (int t = 0; t < truths; ++t) {
        img.truths.push_back({Box{rng.NextFloat(), rng.NextFloat(),
                                  rng.NextFloat(0.05f, 0.4f),
                                  rng.NextFloat(0.05f, 0.4f)},
                              rng.NextInt(0, 2)});
      }
    }
    const EvalResult r = Evaluate(images, 3);
    EXPECT_GE(r.map, 0.0f);
    EXPECT_LE(r.map, 1.0f);
    EXPECT_GE(r.f1, 0.0f);
    EXPECT_LE(r.f1, 1.0f);
    for (const ClassMetrics& cm : r.per_class) {
      EXPECT_GE(cm.ap, 0.0f);
      EXPECT_LE(cm.ap, 1.0f);
      EXPECT_EQ(cm.true_positives + cm.false_positives, cm.num_detections);
      // PR curve recalls are non-decreasing.
      for (size_t i = 1; i < cm.pr_curve.size(); ++i) {
        EXPECT_GE(cm.pr_curve[i].recall, cm.pr_curve[i - 1].recall - 1e-6f);
      }
    }
  }
}

TEST(WeightsIoProperty, ArbitraryTruncationNeverCrashes) {
  const char* cfg =
      "[net]\nwidth=16\nheight=16\nchannels=3\nbatch=1\n"
      "[convolutional]\nbatch_normalize=1\nfilters=4\nsize=3\nstride=2\n"
      "pad=1\nactivation=leaky\n"
      "[convolutional]\nfilters=8\nsize=1\nstride=1\nactivation=linear\n";
  Rng rng(5);
  auto built = BuildNetworkFromCfg(cfg, 0, rng);
  ASSERT_TRUE(built.ok());
  const std::string path = testing::TempDir() + "/thali_trunc_fuzz.weights";
  ASSERT_TRUE(SaveWeights(*built->net, path).ok());
  auto full = ReadFileToString(path);
  ASSERT_TRUE(full.ok());

  for (int trial = 0; trial < 40; ++trial) {
    const size_t cut = rng.NextU64Below(full->size());
    ASSERT_TRUE(WriteStringToFile(path, full->substr(0, cut)).ok());
    // Must return a Status (any code) — never crash or hang.
    auto loaded = LoadWeights(*built->net, path);
    if (loaded.ok()) {
      EXPECT_LE(*loaded, 2);
    }
  }
  // Restore valid file and confirm a clean load still works.
  ASSERT_TRUE(WriteStringToFile(path, *full).ok());
  auto loaded = LoadWeights(*built->net, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 2);
  std::remove(path.c_str());
}

TEST(CfgProperty, RandomLineNoiseYieldsStatusNotCrash) {
  Rng rng(6);
  const char* fragments[] = {"[net]",  "width=32", "height=",  "=5",
                             "[[bad]", "a=b=c",    "filters",  "[]",
                             "#x",     "size=3",   "[yolo]",   "mask=0,",
                             "anchors=1,2", "stride=0", "pad=-1"};
  for (int trial = 0; trial < 50; ++trial) {
    std::string cfg;
    const int lines = rng.NextInt(1, 12);
    for (int i = 0; i < lines; ++i) {
      cfg += fragments[rng.NextU64Below(15)];
      cfg += '\n';
    }
    auto parsed = ParseCfg(cfg);  // either ok or error; must not crash
    if (parsed.ok()) {
      Rng wrng(7);
      auto built = BuildNetworkFromCfg(cfg, 1, wrng);
      (void)built;  // Status either way
    }
  }
}

TEST(AugmentProperty, PixelsStayInUnitRange) {
  PlatterRenderer renderer(IndianFood10(), PlatterRenderer::Options{});
  Rng rng(8);
  AugmentOptions opts;
  opts.mosaic = true;
  for (int trial = 0; trial < 10; ++trial) {
    RenderedScene scene = renderer.RenderSingleDish(trial % 10, rng);
    Sample s = AugmentSample({scene.image, scene.truths}, opts, rng);
    for (int64_t i = 0; i < s.image.size(); ++i) {
      EXPECT_GE(s.image.data()[i], -1e-5f);
      EXPECT_LE(s.image.data()[i], 1.0f + 1e-5f);
    }
    for (const TruthBox& t : s.truths) {
      EXPECT_GE(t.box.w, 0.0f);
      EXPECT_GE(t.box.h, 0.0f);
    }
  }
}

TEST(RendererProperty, AllClassesAllSizesProduceValidScenes) {
  // Renders every IndianFood20 class at several canvas sizes: boxes must
  // be positive-area, in-bounds, and the image must contain non-background
  // content inside the box.
  for (int size : {64, 96, 128}) {
    PlatterRenderer::Options ro;
    ro.width = size;
    ro.height = size;
    PlatterRenderer renderer(IndianFood20(), ro);
    Rng rng(static_cast<uint64_t>(size));
    for (int cls = 0; cls < 20; ++cls) {
      RenderedScene s = renderer.RenderSingleDish(cls, rng);
      ASSERT_EQ(s.truths.size(), 1u);
      const Box& b = s.truths[0].box;
      EXPECT_GT(b.w * size, 3.0f) << "class " << cls << " size " << size;
      EXPECT_GT(b.h * size, 3.0f);
      EXPECT_GE(b.Left(), -1e-4f);
      EXPECT_LE(b.Right(), 1.0f + 1e-4f);
    }
  }
}

TEST(LrPolicyProperty, NonIncreasingAfterBurnIn) {
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    LrPolicy p;
    p.base_lr = rng.NextFloat(1e-4f, 1e-2f);
    p.burn_in = rng.NextInt(0, 50);
    const int s1 = rng.NextInt(60, 200);
    p.steps = {s1, s1 + rng.NextInt(1, 200)};
    p.scales = {rng.NextFloat(0.05f, 0.9f), rng.NextFloat(0.05f, 0.9f)};
    float prev = p.LearningRateAt(p.burn_in);
    for (int it = p.burn_in + 1; it < 500; ++it) {
      const float lr = p.LearningRateAt(it);
      EXPECT_LE(lr, prev + 1e-9f) << "iteration " << it;
      prev = lr;
    }
  }
}

TEST(BoxProperty, CornerRoundTrip) {
  Rng rng(10);
  for (int trial = 0; trial < 200; ++trial) {
    Box b{rng.NextFloat(), rng.NextFloat(), rng.NextFloat(0.01f, 0.9f),
          rng.NextFloat(0.01f, 0.9f)};
    Box r = BoxFromCorners(b.Left(), b.Top(), b.Right(), b.Bottom());
    EXPECT_NEAR(r.x, b.x, 1e-5f);
    EXPECT_NEAR(r.y, b.y, 1e-5f);
    EXPECT_NEAR(r.w, b.w, 1e-5f);
    EXPECT_NEAR(r.h, b.h, 1e-5f);
  }
}

}  // namespace
}  // namespace thali
