// Conformance tests for the packed GEMM driver (tensor/gemm.cc) against
// the unpacked reference kernels of the dispatched family
// (internal::GemmReference): by the determinism contract in
// gemm_microkernel.h the two must agree bitwise, for every transpose
// combination, adversarial shape and alpha/beta edge case.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "base/cpu_features.h"
#include "base/rng.h"
#include "base/thread_pool.h"
#include "tensor/gemm.h"
#include "tensor/gemm_microkernel.h"
#include "tensor/gemm_pack.h"

namespace thali {
namespace {

std::vector<float> RandomVec(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) x = rng.NextGaussian();
  return v;
}

// Restores dispatch, packing mode and parallelism after every test.
class GemmPackedTest : public ::testing::Test {
 protected:
  void TearDown() override {
    internal::SetGemmKernelForTesting(nullptr);
    internal::SetGemmPackingForTesting(-1);
    SetMaxParallelism(1);
  }
};

void ExpectPackedMatchesReference(bool ta, bool tb, int64_t m, int64_t n,
                                  int64_t k, float alpha, float beta) {
  const auto a = RandomVec((ta ? k * m : m * k) + (k == 0 ? 1 : 0), 11);
  const auto b = RandomVec((tb ? n * k : k * n) + (k == 0 ? 1 : 0), 22);
  const auto c0 = RandomVec(m * n, 33);
  const int64_t lda = ta ? m : k;
  const int64_t ldb = tb ? k : n;

  std::vector<float> c_packed = c0;
  internal::SetGemmPackingForTesting(1);
  Gemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
       c_packed.data(), n);

  std::vector<float> c_ref = c0;
  internal::GemmReference(ta, tb, m, n, k, alpha, a.data(), lda, b.data(),
                          ldb, beta, c_ref.data(), n);

  EXPECT_EQ(
      std::memcmp(c_packed.data(), c_ref.data(), c_packed.size() * sizeof(float)),
      0)
      << "ta=" << ta << " tb=" << tb << " m=" << m << " n=" << n << " k=" << k
      << " alpha=" << alpha << " beta=" << beta;
}

struct ShapeCase {
  int64_t m, n, k;
};

// Adversarial sizes: unit dims, tile edges (MR=6, NR=16) +/- 1, primes,
// and k straddling the KC=256 cache block.
constexpr ShapeCase kShapes[] = {
    {1, 1, 1},   {5, 17, 3},   {6, 16, 64},  {7, 15, 37},
    {12, 33, 1}, {37, 61, 67}, {1, 16, 259}, {61, 2, 2},
};

constexpr struct {
  float alpha, beta;
} kAlphaBeta[] = {
    {1.0f, 0.0f},  {1.0f, 1.0f},  {0.0f, 0.5f},
    {0.7f, -0.3f}, {2.0f, 0.5f},
};

TEST_F(GemmPackedTest, MatchesReferenceOnAllTransposesAndEdges) {
  for (const auto& s : kShapes) {
    for (const auto& ab : kAlphaBeta) {
      for (const bool ta : {false, true}) {
        for (const bool tb : {false, true}) {
          ExpectPackedMatchesReference(ta, tb, s.m, s.n, s.k, ab.alpha,
                                       ab.beta);
        }
      }
    }
  }
}

TEST_F(GemmPackedTest, MatchesReferenceOnCacheBlockStraddlers) {
  // m straddles MC=120, n straddles NC=512, k straddles KC=256.
  ExpectPackedMatchesReference(false, false, 131, 531, 307, 1.0f, 0.0f);
  ExpectPackedMatchesReference(false, true, 121, 513, 259, 0.7f, 1.0f);
  ExpectPackedMatchesReference(true, false, 126, 520, 257, 1.0f, 0.5f);
}

TEST_F(GemmPackedTest, DegenerateAlphaZeroBetaOneLeavesCUntouched) {
  const auto a = RandomVec(6 * 8, 1);
  const auto b = RandomVec(8 * 10, 2);
  const auto c0 = RandomVec(6 * 10, 3);
  std::vector<float> c = c0;
  Gemm(false, false, 6, 10, 8, 0.0f, a.data(), 8, b.data(), 10, 1.0f,
       c.data(), 10);
  EXPECT_EQ(std::memcmp(c.data(), c0.data(), c.size() * sizeof(float)), 0);
}

TEST_F(GemmPackedTest, KZeroOnlyScalesByBeta) {
  const float dummy = 0.0f;
  const auto c0 = RandomVec(7 * 9, 4);
  std::vector<float> c = c0;
  Gemm(false, false, 7, 9, 0, 1.0f, &dummy, 1, &dummy, 9, 0.5f, c.data(), 9);
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c[i], c0[i] * 0.5f) << i;
  }
}

TEST_F(GemmPackedTest, PrepackedWithEpilogueMatchesSeparatePasses) {
  const int64_t m = 19, n = 333, k = 75;  // ragged on every tile boundary
  const auto a = RandomVec(m * k, 5);
  const auto b = RandomVec(k * n, 6);
  const auto bias = RandomVec(m, 7);
  internal::SetGemmPackingForTesting(1);

  std::vector<float> packed(static_cast<size_t>(GemmPackedWeightFloats(m, k)));
  GemmPackWeights(a.data(), m, k, packed.data());

  for (const GemmActivation act :
       {GemmActivation::kNone, GemmActivation::kLeaky, GemmActivation::kRelu}) {
    GemmEpilogue epilogue;
    epilogue.bias = bias.data();
    epilogue.activation = act;
    std::vector<float> c_fused(static_cast<size_t>(m * n), 0.0f);
    GemmPrepacked(m, n, k, packed.data(), false, b.data(), n, 0.0f,
                  c_fused.data(), n, &epilogue);

    // Staged: plain GEMM, then the conv layer's bias and activation
    // passes, op for op.
    std::vector<float> c_staged(static_cast<size_t>(m * n), 0.0f);
    Gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
         c_staged.data(), n);
    for (int64_t i = 0; i < m; ++i) {
      float* ci = c_staged.data() + i * n;
      for (int64_t j = 0; j < n; ++j) ci[j] += bias[i];
    }
    for (auto& x : c_staged) {
      if (act == GemmActivation::kLeaky) x = x > 0 ? x : 0.1f * x;
      if (act == GemmActivation::kRelu) x = x > 0 ? x : 0.0f;
    }
    EXPECT_EQ(std::memcmp(c_fused.data(), c_staged.data(),
                          c_fused.size() * sizeof(float)),
              0)
        << "activation " << static_cast<int>(act);
  }
}

TEST_F(GemmPackedTest, PrepackedMatchesPlainGemmAcrossThreadCounts) {
  const int64_t m = 32, n = 170, k = 288;
  const auto a = RandomVec(m * k, 8);
  const auto b = RandomVec(k * n, 9);
  internal::SetGemmPackingForTesting(1);
  std::vector<float> packed(static_cast<size_t>(GemmPackedWeightFloats(m, k)));
  GemmPackWeights(a.data(), m, k, packed.data());

  std::vector<float> base(static_cast<size_t>(m * n), 0.0f);
  Gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
       base.data(), n);
  for (const int threads : {1, 2, 4}) {
    SetMaxParallelism(threads);
    std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
    GemmPrepacked(m, n, k, packed.data(), false, b.data(), n, 0.0f, c.data(),
                  n);
    EXPECT_EQ(std::memcmp(c.data(), base.data(), c.size() * sizeof(float)), 0)
        << threads << " threads";
  }
}

TEST_F(GemmPackedTest, DispatchPicksAvx2IffCpuSupportsIt) {
  const bool want_avx2 =
      Avx2GemmKernel() != nullptr && CpuInfo().avx2 && CpuInfo().fma;
  EXPECT_STREQ(GemmKernelName(),
               want_avx2 ? "avx2-fma-6x16" : "scalar-6x16");
  EXPECT_EQ(SelectGemmKernel().fused, want_avx2);
}

TEST_F(GemmPackedTest, ForcedScalarFamilyIsSelfConsistent) {
  internal::SetGemmKernelForTesting("scalar");
  EXPECT_STREQ(GemmKernelName(), "scalar-6x16");
  ExpectPackedMatchesReference(false, false, 23, 45, 130, 1.0f, 0.0f);
  ExpectPackedMatchesReference(true, true, 17, 29, 31, 0.7f, 1.0f);
  internal::SetGemmKernelForTesting(nullptr);
}

TEST_F(GemmPackedTest, PackingOverrideAndEnvParsing) {
  internal::SetGemmPackingForTesting(0);
  EXPECT_FALSE(GemmPackingEnabled());
  internal::SetGemmPackingForTesting(1);
  EXPECT_TRUE(GemmPackingEnabled());
  internal::SetGemmPackingForTesting(-1);

  EXPECT_FALSE(internal::NoPackEnvValueDisables(nullptr));
  EXPECT_FALSE(internal::NoPackEnvValueDisables(""));
  EXPECT_FALSE(internal::NoPackEnvValueDisables("0"));
  EXPECT_TRUE(internal::NoPackEnvValueDisables("1"));
  EXPECT_TRUE(internal::NoPackEnvValueDisables("yes"));
  EXPECT_TRUE(internal::NoPackEnvValueDisables("00"));
}

TEST_F(GemmPackedTest, NoPackPathMatchesPackedPath) {
  const auto a = RandomVec(67 * 129, 12);
  const auto b = RandomVec(129 * 83, 13);
  const auto c0 = RandomVec(67 * 83, 14);

  std::vector<float> c_packed = c0;
  internal::SetGemmPackingForTesting(1);
  Gemm(false, false, 67, 83, 129, 1.0f, a.data(), 129, b.data(), 83, 1.0f,
       c_packed.data(), 83);

  std::vector<float> c_nopack = c0;
  internal::SetGemmPackingForTesting(0);
  Gemm(false, false, 67, 83, 129, 1.0f, a.data(), 129, b.data(), 83, 1.0f,
       c_nopack.data(), 83);

  EXPECT_EQ(std::memcmp(c_packed.data(), c_nopack.data(),
                        c_packed.size() * sizeof(float)),
            0);
}

TEST_F(GemmPackedTest, PackedWeightLayoutRoundTrips) {
  // Spot-check the blob layout contract: block pc at pc*padded_m, tile t
  // at t*MR*kcb inside it, element (p, r) at p*MR + r.
  const int64_t m = 8, k = 300;  // 2 row tiles, 2 KC blocks
  const auto a = RandomVec(m * k, 15);
  std::vector<float> packed(static_cast<size_t>(GemmPackedWeightFloats(m, k)));
  GemmPackWeights(a.data(), m, k, packed.data());
  const int64_t padded_m = GemmPackedRowTiles(m) * kGemmMR;
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const int64_t pc = (p / kGemmKC) * kGemmKC;
      const int64_t kcb = std::min(kGemmKC, k - pc);
      const int64_t t = i / kGemmMR;
      const float got = packed[static_cast<size_t>(
          pc * padded_m + t * kGemmMR * kcb + (p - pc) * kGemmMR +
          (i % kGemmMR))];
      ASSERT_EQ(got, a[static_cast<size_t>(i * k + p)])
          << "i=" << i << " p=" << p;
    }
  }
}

}  // namespace
}  // namespace thali
