// Tests for the thread-pool parallelism substrate (base/thread_pool) and
// its determinism contract: every parallelized kernel must produce
// bitwise identical results at any THALI_NUM_THREADS, 1 included.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "base/rng.h"
#include "base/thread_pool.h"
#include "core/trainer.h"
#include "darknet/cfg.h"
#include "darknet/model_zoo.h"
#include "data/food_classes.h"
#include "nn/conv_layer.h"
#include "nn/exec_plan.h"
#include "nn/network.h"
#include "nn/yolo_layer.h"
#include "tensor/gemm.h"
#include "tensor/gemm_int8.h"

namespace thali {
namespace {

// Every test leaves the global pool at parallelism 4 or restores 1; use a
// fixture so a failing test cannot leak an unexpected parallelism into
// the rest of the suite.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetMaxParallelism(1);
    internal::SetGemmPackingForTesting(-1);
    internal::SetFusionForTesting(-1);
    internal::SetInt8ForTesting(-1);
    internal::SetInt8GemmKernelForTesting(nullptr);
  }
};

TEST_F(ParallelTest, ThreadPoolStartupShutdownRunsAllTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_workers(), 4);
    std::atomic<int> done{0};
    for (int i = 0; i < 100; ++i) {
      pool.Schedule([&count, &done] {
        count.fetch_add(1);
        done.fetch_add(1);
      });
    }
    // Destructor must drain the queue before joining.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST_F(ParallelTest, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  int x = 0;
  pool.Schedule([&x] { x = 7; });
  EXPECT_EQ(x, 7);
}

TEST_F(ParallelTest, EmptyAndReversedRangesNeverInvoke) {
  SetMaxParallelism(4);
  std::atomic<int> calls{0};
  ParallelFor(5, 5, 1, [&](int64_t, int64_t, int) { calls.fetch_add(1); });
  ParallelFor(8, 3, 1, [&](int64_t, int64_t, int) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST_F(ParallelTest, CoversEveryIndexExactlyOnce) {
  SetMaxParallelism(4);
  for (int64_t range : {1, 2, 3, 4, 5, 17, 100}) {
    for (int64_t grain : {1, 2, 7, 1000}) {
      std::vector<std::atomic<int>> hits(static_cast<size_t>(range));
      for (auto& h : hits) h.store(0);
      ParallelFor(0, range, grain, [&](int64_t b, int64_t e, int tid) {
        EXPECT_GE(tid, 0);
        EXPECT_LT(tid, MaxParallelism());
        EXPECT_LE(b, e);
        for (int64_t i = b; i < e; ++i) {
          hits[static_cast<size_t>(i)].fetch_add(1);
        }
      });
      for (int64_t i = 0; i < range; ++i) {
        EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
            << "range=" << range << " grain=" << grain << " i=" << i;
      }
    }
  }
}

TEST_F(ParallelTest, RangeSmallerThanThreadsUsesDistinctTids) {
  SetMaxParallelism(8);
  std::vector<std::atomic<int>> tid_hits(8);
  for (auto& h : tid_hits) h.store(0);
  ParallelFor(0, 3, 1, [&](int64_t b, int64_t e, int tid) {
    EXPECT_EQ(e - b, 1);  // 3 indices over >= 3 strands -> singleton chunks
    tid_hits[static_cast<size_t>(tid)].fetch_add(1);
  });
  EXPECT_EQ(tid_hits[0].load(), 1);
  EXPECT_EQ(tid_hits[1].load(), 1);
  EXPECT_EQ(tid_hits[2].load(), 1);
}

TEST_F(ParallelTest, GrainLargerThanRangeRunsInline) {
  SetMaxParallelism(4);
  int calls = 0;  // no atomic needed: must run on the calling thread only
  ParallelFor(0, 10, 64, [&](int64_t b, int64_t e, int tid) {
    ++calls;
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 10);
    EXPECT_EQ(tid, 0);
  });
  EXPECT_EQ(calls, 1);
}

TEST_F(ParallelTest, BoundedStrandsRespectCap) {
  SetMaxParallelism(8);
  ParallelForBounded(0, 100, 1, 2, [&](int64_t, int64_t, int tid) {
    EXPECT_LT(tid, 2);
  });
}

TEST_F(ParallelTest, ExceptionPropagatesFromWorkerChunk) {
  SetMaxParallelism(4);
  EXPECT_THROW(
      ParallelFor(0, 100, 1,
                  [&](int64_t b, int64_t e, int) {
                    // Index 99 lives in the last chunk, executed by a
                    // worker (the caller runs chunk 0).
                    for (int64_t i = b; i < e; ++i) {
                      if (i == 99) throw std::runtime_error("boom");
                    }
                  }),
      std::runtime_error);
}

TEST_F(ParallelTest, ExceptionPropagatesFromCallerChunk) {
  SetMaxParallelism(4);
  EXPECT_THROW(ParallelFor(0, 100, 1,
                           [&](int64_t b, int64_t, int) {
                             if (b == 0) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
}

TEST_F(ParallelTest, NestedParallelForRunsInlineAndCovers) {
  SetMaxParallelism(4);
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  ParallelFor(0, 8, 1, [&](int64_t b0, int64_t e0, int) {
    for (int64_t i = b0; i < e0; ++i) {
      ParallelFor(0, 8, 1, [&](int64_t b1, int64_t e1, int tid) {
        EXPECT_EQ(tid, 0);  // nested regions must not re-parallelize
        for (int64_t j = b1; j < e1; ++j) {
          hits[static_cast<size_t>(i * 8 + j)].fetch_add(1);
        }
      });
    }
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// --- Determinism: threaded kernels must be bitwise identical to 1-thread.

std::vector<float> RandomVec(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) x = rng.NextGaussian();
  return v;
}

TEST_F(ParallelTest, GemmBitwiseIdenticalAcrossThreadCounts) {
  // Odd sizes straddle the register-block boundaries.
  const int64_t m = 67, n = 129, kk = 65;
  const auto a = RandomVec(m * kk, 1), b = RandomVec(kk * n, 2);
  const auto at = RandomVec(kk * m, 3), bt = RandomVec(n * kk, 4);
  const auto c0 = RandomVec(m * n, 5);

  struct Case {
    bool ta, tb;
    const std::vector<float>*pa, *pb;
    int64_t lda, ldb;
    float alpha, beta;
  };
  const Case cases[] = {
      {false, false, &a, &b, kk, n, 1.0f, 0.0f},
      {false, false, &a, &b, kk, n, 0.7f, 1.0f},
      {true, false, &at, &b, m, n, 1.0f, 0.5f},
      {false, true, &a, &bt, kk, kk, 1.0f, 1.0f},
      {true, true, &at, &bt, m, kk, 0.3f, 0.0f},
  };
  for (const Case& cs : cases) {
    std::vector<float> c1 = c0, c4 = c0;
    SetMaxParallelism(1);
    Gemm(cs.ta, cs.tb, m, n, kk, cs.alpha, cs.pa->data(), cs.lda,
         cs.pb->data(), cs.ldb, cs.beta, c1.data(), n);
    SetMaxParallelism(4);
    Gemm(cs.ta, cs.tb, m, n, kk, cs.alpha, cs.pa->data(), cs.lda,
         cs.pb->data(), cs.ldb, cs.beta, c4.data(), n);
    EXPECT_EQ(std::memcmp(c1.data(), c4.data(), c1.size() * sizeof(float)), 0)
        << "ta=" << cs.ta << " tb=" << cs.tb;
  }
}

TEST_F(ParallelTest, PackedGemmBitwiseIdenticalAcrossThreadsAndPaths) {
  // Sizes straddle every cache block (MC=120, NC=512, KC=256). The packed
  // driver at any thread count, and the THALI_NO_PACK reference path,
  // must all match the sequential oracle bitwise.
  const int64_t m = 131, n = 531, kk = 307;
  const auto a = RandomVec(m * kk, 21), b = RandomVec(kk * n, 22);
  const auto c0 = RandomVec(m * n, 23);

  std::vector<float> c_ref = c0;
  internal::GemmReference(false, false, m, n, kk, 1.0f, a.data(), kk,
                          b.data(), n, 0.5f, c_ref.data(), n);

  for (const int packing : {1, 0}) {
    internal::SetGemmPackingForTesting(packing);
    for (const int threads : {1, 2, 4}) {
      SetMaxParallelism(threads);
      std::vector<float> c = c0;
      Gemm(false, false, m, n, kk, 1.0f, a.data(), kk, b.data(), n, 0.5f,
           c.data(), n);
      EXPECT_EQ(std::memcmp(c.data(), c_ref.data(), c.size() * sizeof(float)),
                0)
          << "packing=" << packing << " threads=" << threads;
    }
  }
  internal::SetGemmPackingForTesting(-1);
}

// Full yolov4-thali inference forward; returns the detection-head
// activations flattened for bitwise comparison. `fold_bn` folds batch
// norm into weights/biases first, which routes every conv through the
// fused bias+activation GEMM epilogue when packing is on.
std::vector<float> ThaliInferenceForward(int threads, bool packing,
                                         bool fold_bn) {
  SetMaxParallelism(threads);
  internal::SetGemmPackingForTesting(packing ? 1 : 0);
  YoloThaliOptions yo;
  Rng rng(4242);
  auto built = BuildNetworkFromCfg(YoloThaliCfg(yo), /*batch_override=*/1,
                                   rng, ExecMode::kInference);
  THALI_CHECK_OK(built.status());
  Network& net = *built->net;
  if (fold_bn) {
    for (int i = 0; i < net.num_layers(); ++i) {
      if (std::string_view(net.layer(i).kind()) == "convolutional") {
        static_cast<ConvLayer&>(net.layer(i)).FoldBatchNorm();
      }
    }
  }
  Tensor input(net.input_shape());
  Rng irng(17);
  for (int64_t i = 0; i < input.size(); ++i) input[i] = irng.NextGaussian();
  net.Forward(input, /*train=*/false);
  std::vector<float> flat;
  for (YoloLayer* head : built->yolo_layers) {
    const Tensor& out = head->output();
    flat.insert(flat.end(), out.data(), out.data() + out.size());
  }
  internal::SetGemmPackingForTesting(-1);
  return flat;
}

TEST_F(ParallelTest, ThaliInferenceBitwiseIdenticalAcrossThreadsAndPacking) {
  const std::vector<float> base = ThaliInferenceForward(1, true, false);
  ASSERT_FALSE(base.empty());
  for (const bool packing : {true, false}) {
    for (const int threads : {1, 2, 4}) {
      if (packing && threads == 1) continue;  // that's `base`
      const std::vector<float> got =
          ThaliInferenceForward(threads, packing, false);
      ASSERT_EQ(got.size(), base.size());
      EXPECT_EQ(
          std::memcmp(got.data(), base.data(), got.size() * sizeof(float)), 0)
          << "packing=" << packing << " threads=" << threads;
    }
  }
}

TEST_F(ParallelTest, FoldedThaliInferenceBitwiseIdenticalWithFusedEpilogue) {
  // Folded batch norm makes every conv eligible for the fused
  // bias+activation write-back; packed (fused) and no-pack (staged
  // passes) runs must still agree bitwise at every thread count.
  const std::vector<float> base = ThaliInferenceForward(1, true, true);
  ASSERT_FALSE(base.empty());
  for (const bool packing : {true, false}) {
    for (const int threads : {1, 4}) {
      if (packing && threads == 1) continue;
      const std::vector<float> got =
          ThaliInferenceForward(threads, packing, true);
      ASSERT_EQ(got.size(), base.size());
      EXPECT_EQ(
          std::memcmp(got.data(), base.data(), got.size() * sizeof(float)), 0)
          << "packing=" << packing << " threads=" << threads;
    }
  }
}

// Full yolov4-thali int8 inference: builds with int8 latched (and
// optionally fusion disabled, where int8 must become a no-op), folds
// batch norm, min/max-calibrates every quantized-algo conv on the test
// input, replans so the quantize-once chains arm, then forwards through
// a SetBatch(1 -> 4 -> 1) cycle with the given kernel family forced. Returns the final batch-1 head
// activations flattened for bitwise comparison.
std::vector<float> ThaliInt8Forward(int threads, const char* kernel,
                                    bool fuse, int int8_mode) {
  SetMaxParallelism(threads);
  internal::SetInt8ForTesting(int8_mode);
  internal::SetFusionForTesting(fuse ? -1 : 0);
  Rng rng(4242);
  auto built = BuildNetworkFromCfg(YoloThaliCfg(YoloThaliOptions{}),
                                   /*batch_override=*/1, rng,
                                   ExecMode::kInference);
  internal::SetFusionForTesting(-1);
  internal::SetInt8ForTesting(-1);
  THALI_CHECK_OK(built.status());
  Network& net = *built->net;
  for (int i = 0; i < net.num_layers(); ++i) {
    if (std::string_view(net.layer(i).kind()) == "convolutional") {
      static_cast<ConvLayer&>(net.layer(i)).FoldBatchNorm();
    }
  }
  Tensor input(net.input_shape());
  Rng irng(17);
  for (int64_t i = 0; i < input.size(); ++i) input[i] = irng.NextGaussian();

  net.set_calib_phase(CalibPhase::kRange);
  Tensor calib = input;
  net.Forward(calib, /*train=*/false);
  net.set_calib_phase(CalibPhase::kOff);
  for (int i = 0; i < net.num_layers(); ++i) {
    Layer& l = net.layer(i);
    if (std::string_view(l.kind()) != "convolutional") continue;
    if (l.plan().conv_algo != ConvAlgo::kQuantInt8 &&
        l.plan().conv_algo != ConvAlgo::kQuantInt8Direct1x1) {
      continue;
    }
    static_cast<ConvLayer&>(l).FinalizeCalibration(100.0);
  }
  // Picks up the quantize-once chains (u8 edges, int8 1x1, fused mish
  // requantize) so the thread x kernel matrix exercises the chained
  // forward, not just per-layer quantization.
  THALI_CHECK_OK(net.ReplanInference());

  internal::SetInt8GemmKernelForTesting(kernel);
  Tensor first = input;
  net.Forward(first, /*train=*/false);
  THALI_CHECK_OK(net.SetBatch(4));
  Tensor batched(net.input_shape());
  for (int64_t b = 0; b < 4; ++b) {
    std::copy(input.data(), input.data() + input.size(),
              batched.data() + b * input.size());
  }
  net.Forward(batched, /*train=*/false);
  THALI_CHECK_OK(net.SetBatch(1));
  Tensor again = input;
  net.Forward(again, /*train=*/false);
  internal::SetInt8GemmKernelForTesting(nullptr);

  std::vector<float> flat;
  for (YoloLayer* head : built->yolo_layers) {
    const Tensor& out = head->output();
    flat.insert(flat.end(), out.data(), out.data() + out.size());
  }
  return flat;
}

TEST_F(ParallelTest, Int8InferenceBitwiseIdenticalAcrossThreadsAndKernels) {
  // The quantized forward must be bitwise stable across thread counts,
  // kernel families, and batch re-planning — exact integer accumulation
  // plus the shared scalar requantize epilogue make this a hard
  // equality, unlike the fp32 Winograd tolerance.
  const std::vector<float> base = ThaliInt8Forward(1, "scalar", true, 1);
  ASSERT_FALSE(base.empty());
  for (const char* kernel : {"scalar", "avx2"}) {
    for (const int threads : {1, 2, 4}) {
      if (std::string_view(kernel) == "scalar" && threads == 1) continue;
      const std::vector<float> got = ThaliInt8Forward(threads, kernel, true, 1);
      ASSERT_EQ(got.size(), base.size());
      EXPECT_EQ(
          std::memcmp(got.data(), base.data(), got.size() * sizeof(float)), 0)
          << "kernel=" << kernel << " threads=" << threads;
    }
  }
}

TEST_F(ParallelTest, Int8UnderNoFuseIsBitwiseFp32) {
  // THALI_NO_FUSE disables the whole fused plan, so THALI_INT8 must
  // become a no-op: identical bits to an int8-off no-fuse run.
  const std::vector<float> fp32 = ThaliInt8Forward(4, "avx2", false, 0);
  const std::vector<float> int8 = ThaliInt8Forward(4, "avx2", false, 1);
  ASSERT_EQ(int8.size(), fp32.size());
  ASSERT_FALSE(fp32.empty());
  EXPECT_EQ(
      std::memcmp(int8.data(), fp32.data(), int8.size() * sizeof(float)), 0);
}

// Conformance sweep over every conv shape in yolov4-thali: the fused
// plan (CNHW layout, direct 1x1, Winograd 3x3, fast mish) must land
// within the documented 1e-4 + 1e-3*|ref| envelope of the reference
// im2col plan at *every conv layer's output*, not just the heads — so a
// drifting kernel is pinned to its layer, and every one of the model's
// distinct (C,F,k,s,HxW) conv geometries gets exercised. Batch 1, where
// CNHW and NCHW coincide bitwise, so outputs compare element for
// element without a gather. THALI_NO_ARENA keeps every layer's output
// in its own buffer — under the arena, early outputs are clobbered by
// later layers before the post-forward comparison could read them.
TEST_F(ParallelTest, FusedConvSweepMatchesReferencePlanPerLayer) {
  SetMaxParallelism(4);
  ASSERT_EQ(setenv("THALI_NO_ARENA", "1", 1), 0);
  auto build = [](int fuse) {
    internal::SetFusionForTesting(fuse);
    Rng rng(4242);
    auto built = BuildNetworkFromCfg(YoloThaliCfg(YoloThaliOptions{}),
                                     /*batch_override=*/1, rng,
                                     ExecMode::kInference);
    internal::SetFusionForTesting(-1);
    THALI_CHECK_OK(built.status());
    return std::move(built).value();
  };
  BuiltNetwork ref = build(0);
  BuiltNetwork fused = build(1);
  ASSERT_EQ(unsetenv("THALI_NO_ARENA"), 0);
  ASSERT_FALSE(ref.net->exec_plan().fused);
  ASSERT_TRUE(fused.net->exec_plan().fused);
  ASSERT_FALSE(fused.net->arena_plan().enabled);

  Tensor input(ref.net->input_shape());
  Rng irng(17);
  for (int64_t i = 0; i < input.size(); ++i) input[i] = irng.NextGaussian();
  ref.net->Forward(input, /*train=*/false);
  Tensor input2 = input;  // fused net must not depend on shared storage
  fused.net->Forward(input2, /*train=*/false);

  std::set<std::string> shapes;
  for (int li = 0; li < ref.net->num_layers(); ++li) {
    if (std::string_view(ref.net->layer(li).kind()) != "convolutional") {
      continue;
    }
    const auto& conv = static_cast<const ConvLayer&>(ref.net->layer(li));
    const ConvLayer::Options& o = conv.options();
    const Shape& in = conv.input_shape();
    shapes.insert(std::to_string(in.dim(1)) + ">" +
                  std::to_string(o.filters) + "k" + std::to_string(o.ksize) +
                  "s" + std::to_string(o.stride) + "@" +
                  std::to_string(in.dim(2)) + "x" + std::to_string(in.dim(3)));
    const Tensor& a = ref.net->layer(li).output();
    const Tensor& b = fused.net->layer(li).output();
    ASSERT_EQ(a.size(), b.size()) << "layer " << li;
    for (int64_t i = 0; i < a.size(); ++i) {
      ASSERT_NEAR(a.data()[i], b.data()[i],
                  1e-4f + 1e-3f * std::abs(a.data()[i]))
          << "conv layer " << li << " ("
          << ConvAlgoName(
                 fused.net->exec_plan().layers[static_cast<size_t>(li)]
                     .conv_algo)
          << ") at " << i;
    }
  }
  // yolov4-thali spans 22 distinct conv geometries; the sweep must not
  // silently shrink if the cfg generator changes.
  EXPECT_EQ(shapes.size(), 22u);
}

// One forward(train) + seeded backward on a fresh conv net; returns
// (output, weight grads, bias grads, input-adjacent delta... ) flattened
// for bitwise comparison.
std::vector<float> ConvRoundTrip(const ConvLayer::Options& copts, int batch,
                                 int in_c, int hw) {
  Network net(hw, hw, in_c, batch);
  net.Add(std::make_unique<ConvLayer>(ConvLayer::Options{copts}));
  net.Add(std::make_unique<ConvLayer>(ConvLayer::Options{copts}));
  THALI_CHECK_OK(net.Finalize());
  Rng wrng(99);
  static_cast<ConvLayer&>(net.layer(0)).InitWeights(wrng);
  static_cast<ConvLayer&>(net.layer(1)).InitWeights(wrng);

  Tensor input(net.input_shape());
  Rng irng(7);
  for (int64_t i = 0; i < input.size(); ++i) input[i] = irng.NextGaussian();

  net.ZeroDeltas();
  net.ZeroGrads();
  const Tensor& out = net.Forward(input, /*train=*/true);
  Tensor& last_delta = net.layer(1).delta();
  for (int64_t i = 0; i < last_delta.size(); ++i) {
    last_delta[i] = 0.01f * static_cast<float>(i % 13) - 0.06f;
  }
  net.Backward(input);

  std::vector<float> flat(out.data(), out.data() + out.size());
  for (int li = 0; li < net.num_layers(); ++li) {
    for (const Param& p : net.layer(li).Params()) {
      flat.insert(flat.end(), p.grad->data(), p.grad->data() + p.grad->size());
    }
    const Tensor& d = net.layer(li).delta();
    flat.insert(flat.end(), d.data(), d.data() + d.size());
  }
  return flat;
}

TEST_F(ParallelTest, ConvForwardBackwardBitwiseIdenticalAcrossThreadCounts) {
  ConvLayer::Options bn_conv;
  bn_conv.filters = 6;
  bn_conv.ksize = 3;
  bn_conv.stride = 1;
  bn_conv.pad = 1;
  bn_conv.batch_normalize = true;
  bn_conv.activation = Activation::kMish;

  ConvLayer::Options one_by_one;
  one_by_one.filters = 5;
  one_by_one.ksize = 1;
  one_by_one.stride = 1;
  one_by_one.pad = 0;
  one_by_one.batch_normalize = false;
  one_by_one.activation = Activation::kLeaky;

  for (const auto& copts : {bn_conv, one_by_one}) {
    SetMaxParallelism(1);
    const std::vector<float> r1 = ConvRoundTrip(copts, 3, 4, 13);
    SetMaxParallelism(4);
    const std::vector<float> r4 = ConvRoundTrip(copts, 3, 4, 13);
    ASSERT_EQ(r1.size(), r4.size());
    EXPECT_EQ(std::memcmp(r1.data(), r4.data(), r1.size() * sizeof(float)), 0)
        << "ksize=" << copts.ksize;
  }
}

struct TrainRun {
  std::vector<double> losses;
  float map = 0.0f;
  std::vector<ImageEval> evals;
};

TrainRun RunTinyTraining(int parallelism) {
  SetMaxParallelism(parallelism);

  DatasetSpec spec;
  spec.num_images = 10;
  spec.seed = 321;
  FoodDataset ds = FoodDataset::Generate(IndianFood10(), spec);

  YoloThaliOptions yo;
  yo.classes = 10;
  yo.batch = 2;
  yo.max_batches = 3;
  yo.burn_in = 2;
  yo.mosaic = true;  // exercise the parallel mosaic path
  TransferTrainer::Options topts;
  topts.cfg_text = YoloThaliCfg(yo);
  topts.log_every = 0;

  auto trainer = TransferTrainer::Create(topts);
  THALI_CHECK_OK(trainer.status());
  TrainRun run;
  THALI_CHECK_OK(trainer->Train(ds, /*iterations=*/3, /*checkpoint_every=*/1,
                                [&](int) {
                                  run.losses.push_back(
                                      trainer->last_loss().total);
                                }));
  run.map = trainer->Evaluate(ds, ds.val_indices()).map;
  run.evals = CollectImageEvals(trainer->network(), trainer->heads(), ds,
                                ds.val_indices(), 0.005f, 0.45f);
  return run;
}

TEST_F(ParallelTest, ThreeIterationTrainingBitwiseIdenticalAcrossThreadCounts) {
  const TrainRun r1 = RunTinyTraining(1);
  const TrainRun r4 = RunTinyTraining(4);

  ASSERT_EQ(r1.losses.size(), 3u);
  ASSERT_EQ(r4.losses.size(), 3u);
  for (size_t i = 0; i < r1.losses.size(); ++i) {
    EXPECT_EQ(r1.losses[i], r4.losses[i]) << "iteration " << i + 1;
  }
  EXPECT_EQ(r1.map, r4.map);

  ASSERT_EQ(r1.evals.size(), r4.evals.size());
  for (size_t i = 0; i < r1.evals.size(); ++i) {
    const auto& d1 = r1.evals[i].detections;
    const auto& d4 = r4.evals[i].detections;
    ASSERT_EQ(d1.size(), d4.size()) << "image " << i;
    for (size_t j = 0; j < d1.size(); ++j) {
      EXPECT_EQ(d1[j].class_id, d4[j].class_id);
      EXPECT_EQ(d1[j].confidence, d4[j].confidence);
      EXPECT_EQ(d1[j].box.x, d4[j].box.x);
      EXPECT_EQ(d1[j].box.y, d4[j].box.y);
      EXPECT_EQ(d1[j].box.w, d4[j].box.w);
      EXPECT_EQ(d1[j].box.h, d4[j].box.h);
    }
  }
}

TEST_F(ParallelTest, DatasetGenerationBitwiseIdenticalAcrossThreadCounts) {
  DatasetSpec spec;
  spec.num_images = 14;
  spec.seed = 555;
  SetMaxParallelism(1);
  FoodDataset a = FoodDataset::Generate(IndianFood10(), spec);
  SetMaxParallelism(4);
  FoodDataset b = FoodDataset::Generate(IndianFood10(), spec);
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.item(i).truths.size(), b.item(i).truths.size()) << i;
    ASSERT_EQ(a.item(i).image.size(), b.item(i).image.size());
    EXPECT_EQ(std::memcmp(a.item(i).image.data(), b.item(i).image.data(),
                          static_cast<size_t>(a.item(i).image.size()) *
                              sizeof(float)),
              0)
        << "image " << i;
  }
}

}  // namespace
}  // namespace thali
