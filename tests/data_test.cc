#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "base/file_util.h"
#include "data/annotation.h"
#include "data/augment.h"
#include "data/dataset.h"
#include "data/food_classes.h"
#include "data/hashtag_catalog.h"
#include "data/nutrition.h"
#include "data/renderer.h"

namespace thali {
namespace {

TEST(FoodClasses, IndianFood10MatchesPaperTableI) {
  const auto& c = IndianFood10();
  ASSERT_EQ(c.size(), 10u);
  // Table I order.
  EXPECT_EQ(c[0].display_name, "Aloo Paratha");
  EXPECT_EQ(c[1].display_name, "Biryani");
  EXPECT_EQ(c[2].display_name, "Chapati");
  EXPECT_EQ(c[3].display_name, "Chicken Tikka");
  EXPECT_EQ(c[4].display_name, "Khichdi");
  EXPECT_EQ(c[5].display_name, "Omelette");
  EXPECT_EQ(c[6].display_name, "Palak Paneer");
  EXPECT_EQ(c[7].display_name, "Plain rice");
  EXPECT_EQ(c[8].display_name, "Poha");
  EXPECT_EQ(c[9].display_name, "Rasgulla");
}

TEST(FoodClasses, IndianFood20MatchesPaperTableIV) {
  const auto& c = IndianFood20();
  ASSERT_EQ(c.size(), 20u);
  std::set<std::string> names;
  for (const auto& s : c) names.insert(s.display_name);
  for (const char* want :
       {"Indian Bread", "Dosa", "Rasgulla", "Rajma", "Biryani", "Poori",
        "Uttapam", "Chole", "Paneer", "Dal", "Poha", "Sambhar", "Khichdi",
        "Papad", "Omelette", "Gulab Jamun", "Plain Rice", "Idli",
        "Dal Makhni", "Vada"}) {
    EXPECT_TRUE(names.count(want)) << "missing " << want;
  }
}

TEST(FoodClasses, NamesUniqueAndHashtagsWellFormed) {
  for (const auto* reg : {&IndianFood10(), &IndianFood20()}) {
    std::set<std::string> seen;
    for (const auto& s : *reg) {
      EXPECT_TRUE(seen.insert(s.name).second) << "duplicate " << s.name;
      EXPECT_EQ(s.hashtag[0], '#');
      EXPECT_EQ(s.hashtag.find('_'), std::string::npos);
      EXPECT_GT(s.kcal_per_serving, 0.0f);
    }
  }
}

TEST(FoodClasses, FindClassByName) {
  EXPECT_EQ(FindClassByName(IndianFood10(), "biryani"), 1);
  EXPECT_EQ(FindClassByName(IndianFood10(), "sushi"), -1);
}

TEST(FoodClasses, ConfusablePairSharesSignature) {
  // The designed-in bread confusion: similar base colors, same shape.
  const auto& c = IndianFood10();
  const auto& paratha = c[0];
  const auto& chapati = c[2];
  EXPECT_EQ(static_cast<int>(paratha.shape),
            static_cast<int>(DishShape::kFlatDisc));
  EXPECT_EQ(static_cast<int>(chapati.shape),
            static_cast<int>(DishShape::kFlatDisc));
  EXPECT_NEAR(paratha.base.r, chapati.base.r, 0.15f);
  EXPECT_NEAR(paratha.base.g, chapati.base.g, 0.15f);
}

class RendererTest : public ::testing::Test {
 protected:
  RendererTest() : renderer_(IndianFood10(), PlatterRenderer::Options{}) {}
  PlatterRenderer renderer_;
};

TEST_F(RendererTest, SingleDishHasOneTruthInBounds) {
  Rng rng(1);
  for (int cls = 0; cls < 10; ++cls) {
    RenderedScene s = renderer_.RenderSingleDish(cls, rng);
    ASSERT_EQ(s.truths.size(), 1u);
    EXPECT_FALSE(s.is_platter);
    EXPECT_EQ(s.truths[0].class_id, cls);
    const Box& b = s.truths[0].box;
    EXPECT_GE(b.Left(), -1e-4f);
    EXPECT_LE(b.Right(), 1.0f + 1e-4f);
    EXPECT_GE(b.Top(), -1e-4f);
    EXPECT_LE(b.Bottom(), 1.0f + 1e-4f);
    EXPECT_GT(b.w, 0.1f);  // the dish is a prominent subject
    EXPECT_GT(b.h, 0.05f);
  }
}

TEST_F(RendererTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  RenderedScene sa = renderer_.RenderSingleDish(3, a);
  RenderedScene sb = renderer_.RenderSingleDish(3, b);
  ASSERT_EQ(sa.image.size(), sb.image.size());
  for (int64_t i = 0; i < sa.image.size(); ++i) {
    EXPECT_EQ(sa.image.data()[i], sb.image.data()[i]);
  }
  EXPECT_EQ(sa.truths[0].box.x, sb.truths[0].box.x);
}

TEST_F(RendererTest, DifferentSeedsVary) {
  Rng a(1), b(2);
  RenderedScene sa = renderer_.RenderSingleDish(1, a);
  RenderedScene sb = renderer_.RenderSingleDish(1, b);
  float diff = 0;
  for (int64_t i = 0; i < sa.image.size(); ++i) {
    diff += std::fabs(sa.image.data()[i] - sb.image.data()[i]);
  }
  EXPECT_GT(diff / sa.image.size(), 0.01f);  // visibly different instance
}

TEST_F(RendererTest, PlatterHasRequestedDishes) {
  Rng rng(7);
  RenderedScene s = renderer_.RenderPlatter({1, 6, 9}, rng);
  EXPECT_TRUE(s.is_platter);
  ASSERT_EQ(s.truths.size(), 3u);
  EXPECT_EQ(s.truths[0].class_id, 1);
  EXPECT_EQ(s.truths[1].class_id, 6);
  EXPECT_EQ(s.truths[2].class_id, 9);
}

TEST_F(RendererTest, RandomPlatterUsesDistinctClasses) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    RenderedScene s = renderer_.RenderRandomPlatter(3, rng);
    std::set<int> classes;
    for (const TruthBox& t : s.truths) classes.insert(t.class_id);
    EXPECT_EQ(classes.size(), 3u);
  }
}

TEST(AnnotationTest, YoloTextRoundTrip) {
  std::vector<TruthBox> truths = {
      {{0.5f, 0.5f, 0.25f, 0.3f}, 3},
      {{0.1f, 0.9f, 0.05f, 0.08f}, 0},
  };
  const std::string text = TruthsToYoloText(truths);
  auto back = YoloTextToTruths(text);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].class_id, 3);
  EXPECT_NEAR((*back)[0].box.w, 0.25f, 1e-5f);
  EXPECT_NEAR((*back)[1].box.y, 0.9f, 1e-5f);
}

TEST(AnnotationTest, RejectsMalformedLines) {
  EXPECT_FALSE(YoloTextToTruths("3 0.5 0.5 0.5\n").ok());       // 4 fields
  EXPECT_FALSE(YoloTextToTruths("-1 0.5 0.5 0.5 0.5\n").ok());  // neg class
  EXPECT_FALSE(YoloTextToTruths("0 1.5 0.5 0.5 0.5\n").ok());   // out of range
  EXPECT_FALSE(YoloTextToTruths("a b c d e\n").ok());
  EXPECT_TRUE(YoloTextToTruths("")->empty());
}

TEST(AnnotationTest, NamesAndDataFiles) {
  const std::string dir = testing::TempDir();
  const std::string names_path = JoinPath(dir, "thali_test.names");
  ASSERT_TRUE(WriteNamesFile({"Biryani", "Chapati"}, names_path).ok());
  auto names = ReadNamesFile(names_path);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ((*names)[1], "Chapati");

  DataFileSpec spec;
  spec.classes = 2;
  spec.train_list = "/tmp/train.txt";
  spec.valid_list = "/tmp/valid.txt";
  spec.names_file = names_path;
  const std::string data_path = JoinPath(dir, "thali_test.data");
  ASSERT_TRUE(WriteDataFile(spec, data_path).ok());
  auto back = ReadDataFile(data_path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->classes, 2);
  EXPECT_EQ(back->train_list, "/tmp/train.txt");
}

TEST(DatasetTest, StatisticsMatchSpec) {
  DatasetSpec spec;
  spec.num_images = 200;
  FoodDataset ds = FoodDataset::Generate(IndianFood10(), spec);
  EXPECT_EQ(ds.size(), 200);
  EXPECT_EQ(ds.num_classes(), 10);

  DatasetStats st = ds.ComputeStats();
  // 7.3% platters, rounded.
  EXPECT_NEAR(static_cast<float>(st.num_platters) / st.num_images, 0.073f,
              0.01f);
  EXPECT_GT(st.avg_dishes_per_platter, 1.9f);
  EXPECT_LT(st.avg_dishes_per_platter, 3.1f);
  // Every class appears.
  for (int c : st.per_class_boxes) EXPECT_GT(c, 0);
}

TEST(DatasetTest, SplitIsDisjointAndComplete) {
  DatasetSpec spec;
  spec.num_images = 100;
  FoodDataset ds = FoodDataset::Generate(IndianFood10(), spec);
  EXPECT_EQ(ds.train_indices().size(), 80u);
  EXPECT_EQ(ds.val_indices().size(), 20u);
  std::set<int> all(ds.train_indices().begin(), ds.train_indices().end());
  for (int i : ds.val_indices()) {
    EXPECT_TRUE(all.insert(i).second) << "index in both splits: " << i;
  }
  EXPECT_EQ(all.size(), 100u);
}

TEST(DatasetTest, GenerationIsDeterministic) {
  DatasetSpec spec;
  spec.num_images = 20;
  FoodDataset a = FoodDataset::Generate(IndianFood10(), spec);
  FoodDataset b = FoodDataset::Generate(IndianFood10(), spec);
  for (int i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.item(i).truths.size(), b.item(i).truths.size());
    EXPECT_EQ(a.item(i).image.data()[100], b.item(i).image.data()[100]);
  }
}

TEST(DatasetTest, WriteLoadRoundTrip) {
  DatasetSpec spec;
  spec.num_images = 12;
  spec.width = 32;
  spec.height = 32;
  FoodDataset ds = FoodDataset::Generate(IndianFood10(), spec);
  const std::string dir = JoinPath(testing::TempDir(), "thali_ds_test");
  ASSERT_TRUE(ds.WriteTo(dir, ClassDisplayNames(IndianFood10())).ok());
  EXPECT_TRUE(PathExists(JoinPath(dir, "obj.data")));
  EXPECT_TRUE(PathExists(JoinPath(dir, "obj.names")));
  EXPECT_TRUE(PathExists(JoinPath(dir, "images/000000.ppm")));
  EXPECT_TRUE(PathExists(JoinPath(dir, "labels/000000.txt")));

  auto back = FoodDataset::LoadFrom(dir);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->size(), 12);
  EXPECT_EQ(back->num_classes(), 10);
  EXPECT_EQ(back->train_indices().size(), ds.train_indices().size());
  // Truths survive the round trip (order within the split lists).
  const auto& orig = ds.item(ds.train_indices()[0]);
  const auto& loaded = back->item(back->train_indices()[0]);
  ASSERT_EQ(orig.truths.size(), loaded.truths.size());
  EXPECT_NEAR(orig.truths[0].box.x, loaded.truths[0].box.x, 1e-4f);
  EXPECT_EQ(orig.truths[0].class_id, loaded.truths[0].class_id);
}

TEST(AugmentTest, CropTruthsRenormalizes) {
  std::vector<TruthBox> truths = {{{0.5f, 0.5f, 0.2f, 0.2f}, 1}};
  // Window = right half of the image.
  auto out = CropTruths(truths, 0.5f, 0.0f, 1.0f, 1.0f, 0.01f);
  ASSERT_EQ(out.size(), 1u);
  // Box half clipped: left edge at window origin, width 0.1 of 0.5 window.
  EXPECT_NEAR(out[0].box.w, 0.2f, 1e-5f);
  EXPECT_NEAR(out[0].box.x, 0.1f, 1e-5f);
}

TEST(AugmentTest, CropDropsTinyRemnants) {
  std::vector<TruthBox> truths = {{{0.05f, 0.05f, 0.08f, 0.08f}, 0}};
  // Window excludes almost the whole box.
  auto out = CropTruths(truths, 0.088f, 0.0f, 1.0f, 1.0f, 0.01f);
  EXPECT_TRUE(out.empty());
}

TEST(AugmentTest, NeutralOptionsKeepTruthCount) {
  Rng rng(3);
  PlatterRenderer renderer(IndianFood10(), PlatterRenderer::Options{});
  RenderedScene scene = renderer.RenderSingleDish(2, rng);
  Sample s{scene.image, scene.truths};
  AugmentOptions opts;
  opts.flip = false;
  opts.jitter = 0.0f;
  opts.hue = 0.0f;
  opts.saturation = 1.0f;
  opts.exposure = 1.0f;
  Sample out = AugmentSample(s, opts, rng);
  ASSERT_EQ(out.truths.size(), 1u);
  EXPECT_NEAR(out.truths[0].box.x, s.truths[0].box.x, 1e-4f);
}

TEST(AugmentTest, FlipMirrorsBoxes) {
  Rng rng(5);
  Sample s;
  s.image = Image(32, 32, 3);
  s.truths = {{{0.3f, 0.4f, 0.1f, 0.1f}, 0}};
  AugmentOptions opts;
  opts.jitter = 0.0f;
  opts.hue = 0.0f;
  opts.saturation = 1.0f;
  opts.exposure = 1.0f;
  opts.flip = true;
  // Flip is random; run until both outcomes observed.
  bool saw_flip = false, saw_noflip = false;
  for (int i = 0; i < 32 && !(saw_flip && saw_noflip); ++i) {
    Sample out = AugmentSample(s, opts, rng);
    ASSERT_EQ(out.truths.size(), 1u);
    if (std::fabs(out.truths[0].box.x - 0.7f) < 1e-4f) saw_flip = true;
    if (std::fabs(out.truths[0].box.x - 0.3f) < 1e-4f) saw_noflip = true;
  }
  EXPECT_TRUE(saw_flip);
  EXPECT_TRUE(saw_noflip);
}

TEST(AugmentTest, MosaicBoxesStayNormalized) {
  Rng rng(9);
  PlatterRenderer renderer(IndianFood10(), PlatterRenderer::Options{});
  std::array<Sample, 4> parts;
  for (int i = 0; i < 4; ++i) {
    RenderedScene sc = renderer.RenderSingleDish(i, rng);
    parts[static_cast<size_t>(i)] = Sample{sc.image, sc.truths};
  }
  AugmentOptions opts;
  Sample out = MosaicCombine(parts, opts, rng);
  EXPECT_EQ(out.image.width(), parts[0].image.width());
  for (const TruthBox& t : out.truths) {
    EXPECT_GE(t.box.Left(), -1e-4f);
    EXPECT_LE(t.box.Right(), 1.0f + 1e-4f);
    EXPECT_GE(t.box.Top(), -1e-4f);
    EXPECT_LE(t.box.Bottom(), 1.0f + 1e-4f);
  }
}

TEST(NutritionTest, ServingsClampAndScale) {
  NutritionEstimator est(IndianFood10());
  EXPECT_FLOAT_EQ(est.ServingsForArea(0.12f), 1.0f);
  EXPECT_FLOAT_EQ(est.ServingsForArea(0.24f), 2.0f);
  EXPECT_FLOAT_EQ(est.ServingsForArea(0.0f), 0.25f);   // clamped low
  EXPECT_FLOAT_EQ(est.ServingsForArea(10.0f), 2.5f);   // clamped high
}

TEST(NutritionTest, EstimateSumsDishes) {
  NutritionEstimator est(IndianFood10());
  std::vector<Detection> dets;
  dets.push_back({Box{0.5f, 0.5f, 0.4f, 0.3f}, 1, 0.9f});   // biryani, 1 sv
  dets.push_back({Box{0.2f, 0.2f, 0.2f, 0.2f}, 9, 0.8f});   // rasgulla
  MealEstimate meal = est.Estimate(dets);
  ASSERT_EQ(meal.items.size(), 2u);
  EXPECT_EQ(meal.items[0].dish, "Biryani");
  EXPECT_NEAR(meal.items[0].kcal, 480.0f, 1.0f);  // 0.12 area = 1 serving
  EXPECT_NEAR(meal.total_kcal, meal.items[0].kcal + meal.items[1].kcal,
              1e-3f);
}

TEST(NutritionTest, SkipsUnknownClassIds) {
  NutritionEstimator est(IndianFood10());
  MealEstimate meal = est.Estimate({{Box{0.5f, 0.5f, 0.2f, 0.2f}, 42, 0.9f}});
  EXPECT_TRUE(meal.items.empty());
  EXPECT_EQ(meal.total_kcal, 0.0f);
}

TEST(NutritionTest, ReceiptContainsTotal) {
  NutritionEstimator est(IndianFood10());
  MealEstimate meal =
      est.Estimate({{Box{0.5f, 0.5f, 0.4f, 0.3f}, 1, 0.9f}});
  const std::string receipt = RenderMealReceipt(meal);
  EXPECT_NE(receipt.find("Biryani"), std::string::npos);
  EXPECT_NE(receipt.find("TOTAL"), std::string::npos);
}

TEST(HashtagCatalogTest, Has100PlusDishesSortedByPopularity) {
  HashtagCatalog cat = HashtagCatalog::BuildIndianFoodCatalog();
  EXPECT_GE(cat.size(), 100);
  const auto& e = cat.entries();
  for (size_t i = 1; i < e.size(); ++i) {
    EXPECT_GE(e[i - 1].posts, e[i].posts);
  }
}

TEST(HashtagCatalogTest, PaperClassesRankHigh) {
  HashtagCatalog cat = HashtagCatalog::BuildIndianFoodCatalog();
  auto top = cat.TopK(24);
  std::set<std::string> names;
  for (const auto& e : top) names.insert(e.dish);
  // All IndianFood20 dishes fall inside the top 24 hashtags.
  for (const auto& sig : IndianFood20()) {
    EXPECT_TRUE(names.count(sig.name)) << sig.name << " not in top-24";
  }
}

TEST(HashtagCatalogTest, ScrapeYieldsUniqueUrls) {
  HashtagCatalog cat = HashtagCatalog::BuildIndianFoodCatalog();
  Rng rng(1);
  auto posts = cat.Scrape("#biryani", 50, rng);
  ASSERT_EQ(posts.size(), 50u);
  std::set<std::string> urls;
  for (const auto& p : posts) {
    EXPECT_EQ(p.hashtag, "#biryani");
    urls.insert(p.url);
  }
  EXPECT_EQ(urls.size(), 50u);
}

TEST(HashtagCatalogTest, FindByDish) {
  HashtagCatalog cat = HashtagCatalog::BuildIndianFoodCatalog();
  const HashtagEntry* e = cat.Find("biryani");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->hashtag, "#biryani");
  EXPECT_EQ(cat.Find("pizza"), nullptr);
}

}  // namespace
}  // namespace thali
