#include <gtest/gtest.h>

#include <cmath>

#include "base/rng.h"
#include "eval/box.h"
#include "eval/detection.h"
#include "eval/metrics.h"

namespace thali {
namespace {

Box B(float x, float y, float w, float h) { return Box{x, y, w, h}; }

TEST(BoxTest, CornersAndArea) {
  Box b = B(0.5f, 0.5f, 0.4f, 0.2f);
  EXPECT_FLOAT_EQ(b.Left(), 0.3f);
  EXPECT_FLOAT_EQ(b.Right(), 0.7f);
  EXPECT_FLOAT_EQ(b.Top(), 0.4f);
  EXPECT_FLOAT_EQ(b.Bottom(), 0.6f);
  EXPECT_NEAR(b.Area(), 0.08f, 1e-6f);
  Box r = BoxFromCorners(0.3f, 0.4f, 0.7f, 0.6f);
  EXPECT_NEAR(r.x, b.x, 1e-6f);
  EXPECT_NEAR(r.h, b.h, 1e-6f);
}

TEST(BoxTest, IouIdenticalIsOne) {
  Box b = B(0.4f, 0.4f, 0.2f, 0.3f);
  EXPECT_NEAR(Iou(b, b), 1.0f, 1e-6f);
}

TEST(BoxTest, IouDisjointIsZero) {
  EXPECT_EQ(Iou(B(0.2f, 0.2f, 0.1f, 0.1f), B(0.8f, 0.8f, 0.1f, 0.1f)), 0.0f);
}

TEST(BoxTest, IouKnownValue) {
  // Two unit squares offset by half: intersection 0.5, union 1.5.
  EXPECT_NEAR(Iou(B(0.5f, 0.5f, 1, 1), B(1.0f, 0.5f, 1, 1)), 1.0f / 3.0f,
              1e-6f);
}

TEST(BoxTest, IouIsSymmetric) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    Box a = B(rng.NextFloat(), rng.NextFloat(), rng.NextFloat(0.05f, 0.5f),
              rng.NextFloat(0.05f, 0.5f));
    Box b = B(rng.NextFloat(), rng.NextFloat(), rng.NextFloat(0.05f, 0.5f),
              rng.NextFloat(0.05f, 0.5f));
    EXPECT_NEAR(Iou(a, b), Iou(b, a), 1e-6f);
    EXPECT_NEAR(Giou(a, b), Giou(b, a), 1e-6f);
    EXPECT_NEAR(Diou(a, b), Diou(b, a), 1e-6f);
  }
}

TEST(BoxTest, IouFamilyOrderingProperty) {
  // For any box pair: CIoU <= DIoU <= IoU, and GIoU <= IoU, with equality
  // when the boxes coincide.
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    Box a = B(rng.NextFloat(), rng.NextFloat(), rng.NextFloat(0.05f, 0.6f),
              rng.NextFloat(0.05f, 0.6f));
    Box b = B(rng.NextFloat(), rng.NextFloat(), rng.NextFloat(0.05f, 0.6f),
              rng.NextFloat(0.05f, 0.6f));
    const float iou = Iou(a, b);
    EXPECT_LE(Diou(a, b), iou + 1e-6f);
    EXPECT_LE(Ciou(a, b), Diou(a, b) + 1e-6f);
    EXPECT_LE(Giou(a, b), iou + 1e-6f);
    EXPECT_GE(Giou(a, b), -1.0f - 1e-6f);
  }
  Box s = B(0.5f, 0.5f, 0.2f, 0.2f);
  EXPECT_NEAR(Ciou(s, s), 1.0f, 1e-5f);
  EXPECT_NEAR(Giou(s, s), 1.0f, 1e-5f);
}

TEST(BoxTest, GiouPenalizesDistance) {
  // Disjoint boxes: IoU is 0 for both, GIoU must be lower for the farther
  // pair.
  const float near_g = Giou(B(0.2f, 0.5f, 0.1f, 0.1f), B(0.4f, 0.5f, 0.1f, 0.1f));
  const float far_g = Giou(B(0.2f, 0.5f, 0.1f, 0.1f), B(0.9f, 0.5f, 0.1f, 0.1f));
  EXPECT_GT(near_g, far_g);
}

TEST(BoxTest, CiouGradMatchesFiniteDifferenceOnXY) {
  // x/y gradients have no alpha-approximation; they must match numerics
  // tightly.
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    // Square boxes: the aspect term v is 0, so alpha-held-constant and
    // full derivatives coincide on x/y.
    const float pw = rng.NextFloat(0.1f, 0.5f);
    const float tw = rng.NextFloat(0.1f, 0.5f);
    Box p = B(rng.NextFloat(0.3f, 0.7f), rng.NextFloat(0.3f, 0.7f), pw, pw);
    Box t = B(rng.NextFloat(0.3f, 0.7f), rng.NextFloat(0.3f, 0.7f), tw, tw);
    float g[4];
    CiouGrad(p, t, g);
    const float eps = 1e-4f;
    float* coords[2] = {&p.x, &p.y};
    for (int c = 0; c < 2; ++c) {
      const float orig = *coords[c];
      *coords[c] = orig + eps;
      const float fp = Ciou(p, t);
      *coords[c] = orig - eps;
      const float fm = Ciou(p, t);
      *coords[c] = orig;
      const float numeric = (fp - fm) / (2 * eps);
      EXPECT_NEAR(g[c], numeric, 5e-2f * std::max(1.0f, std::fabs(numeric)));
    }
  }
}

TEST(BoxTest, CiouGradValueMatchesCiou) {
  Box p = B(0.4f, 0.45f, 0.3f, 0.2f);
  Box t = B(0.5f, 0.5f, 0.25f, 0.25f);
  float g[4];
  EXPECT_NEAR(CiouGrad(p, t, g), Ciou(p, t), 1e-5f);
}

TEST(BoxTest, WhIou) {
  EXPECT_NEAR(WhIou(2, 2, 2, 2), 1.0f, 1e-6f);
  EXPECT_NEAR(WhIou(2, 2, 1, 1), 0.25f, 1e-6f);
  EXPECT_NEAR(WhIou(4, 1, 1, 4), 1.0f / 7.0f, 1e-6f);
}

Detection D(float x, float y, float w, float h, int cls, float conf) {
  return Detection{B(x, y, w, h), cls, conf};
}

TEST(NmsTest, SuppressesOverlappingSameClass) {
  std::vector<Detection> dets = {
      D(0.5f, 0.5f, 0.2f, 0.2f, 0, 0.9f),
      D(0.52f, 0.5f, 0.2f, 0.2f, 0, 0.8f),  // heavy overlap, lower conf
      D(0.9f, 0.9f, 0.1f, 0.1f, 0, 0.7f),   // far away
  };
  auto kept = Nms(dets, 0.45f);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_FLOAT_EQ(kept[0].confidence, 0.9f);
  EXPECT_FLOAT_EQ(kept[1].confidence, 0.7f);
}

TEST(NmsTest, KeepsDifferentClasses) {
  std::vector<Detection> dets = {
      D(0.5f, 0.5f, 0.2f, 0.2f, 0, 0.9f),
      D(0.5f, 0.5f, 0.2f, 0.2f, 1, 0.8f),  // same box, other class
  };
  EXPECT_EQ(Nms(dets, 0.45f).size(), 2u);
  EXPECT_EQ(NmsClassAgnostic(dets, 0.45f).size(), 1u);
}

TEST(NmsTest, OutputSortedByConfidence) {
  std::vector<Detection> dets = {
      D(0.1f, 0.1f, 0.05f, 0.05f, 0, 0.2f),
      D(0.5f, 0.5f, 0.05f, 0.05f, 0, 0.9f),
      D(0.9f, 0.9f, 0.05f, 0.05f, 0, 0.5f),
  };
  auto kept = Nms(dets, 0.45f);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_GE(kept[0].confidence, kept[1].confidence);
  EXPECT_GE(kept[1].confidence, kept[2].confidence);
}

TEST(NmsTest, EmptyInput) { EXPECT_TRUE(Nms({}, 0.5f).empty()); }

// --- Average precision ------------------------------------------------

TEST(ApTest, PerfectDetectorHasApOne) {
  std::vector<PrPoint> curve = {{0.5f, 1.0f, 0.9f}, {1.0f, 1.0f, 0.8f}};
  EXPECT_NEAR(AveragePrecision(curve, ApInterpolation::kEveryPoint), 1.0f,
              1e-6f);
  EXPECT_NEAR(AveragePrecision(curve, ApInterpolation::kElevenPoint), 1.0f,
              1e-6f);
}

TEST(ApTest, HandComputedEveryPoint) {
  // Three detections sorted by confidence: TP, FP, TP; 2 ground truths.
  //   after det1: R=0.5,  P=1.0
  //   after det2: R=0.5,  P=0.5
  //   after det3: R=1.0,  P=2/3
  // Every-point AP = 0.5*1.0 + 0.5*(2/3) = 0.8333...
  std::vector<PrPoint> curve = {
      {0.5f, 1.0f, 0.9f}, {0.5f, 0.5f, 0.8f}, {1.0f, 2.0f / 3.0f, 0.7f}};
  EXPECT_NEAR(AveragePrecision(curve, ApInterpolation::kEveryPoint),
              0.5f * 1.0f + 0.5f * 2.0f / 3.0f, 1e-5f);
}

TEST(ApTest, HandComputedElevenPoint) {
  // Same curve; 11-point: max precision at recall >= r.
  //   r in {0,...,0.5}: 1.0 (6 points); r in {0.6,...,1.0}: 2/3 (5 points)
  std::vector<PrPoint> curve = {
      {0.5f, 1.0f, 0.9f}, {0.5f, 0.5f, 0.8f}, {1.0f, 2.0f / 3.0f, 0.7f}};
  EXPECT_NEAR(AveragePrecision(curve, ApInterpolation::kElevenPoint),
              (6 * 1.0f + 5 * 2.0f / 3.0f) / 11.0f, 1e-5f);
}

TEST(ApTest, EmptyCurveIsZero) {
  EXPECT_EQ(AveragePrecision({}, ApInterpolation::kEveryPoint), 0.0f);
}

// --- End-to-end Evaluate ----------------------------------------------

ImageEval MakeImage(int id, std::vector<Detection> dets,
                    std::vector<GroundTruth> gts) {
  ImageEval ev;
  ev.image_id = id;
  ev.detections = std::move(dets);
  ev.truths = std::move(gts);
  return ev;
}

TEST(EvaluateTest, PerfectDetections) {
  std::vector<ImageEval> images;
  images.push_back(MakeImage(
      0, {D(0.5f, 0.5f, 0.2f, 0.2f, 0, 0.9f)},
      {{B(0.5f, 0.5f, 0.2f, 0.2f), 0}}));
  images.push_back(MakeImage(
      1, {D(0.3f, 0.3f, 0.1f, 0.1f, 1, 0.8f)},
      {{B(0.3f, 0.3f, 0.1f, 0.1f), 1}}));
  EvalResult r = Evaluate(images, 2);
  EXPECT_NEAR(r.map, 1.0f, 1e-6f);
  EXPECT_NEAR(r.f1, 1.0f, 1e-6f);
  EXPECT_NEAR(r.precision, 1.0f, 1e-6f);
  EXPECT_NEAR(r.recall, 1.0f, 1e-6f);
}

TEST(EvaluateTest, DuplicateDetectionCountsOnceAsTp) {
  // Two detections on the same truth: greedy matching takes the higher
  // confidence as TP, the second becomes FP (Padilla rule).
  std::vector<ImageEval> images;
  images.push_back(MakeImage(0,
                             {D(0.5f, 0.5f, 0.2f, 0.2f, 0, 0.9f),
                              D(0.5f, 0.5f, 0.21f, 0.2f, 0, 0.7f)},
                             {{B(0.5f, 0.5f, 0.2f, 0.2f), 0}}));
  EvalResult r = Evaluate(images, 1);
  EXPECT_EQ(r.per_class[0].true_positives, 1);
  EXPECT_EQ(r.per_class[0].false_positives, 1);
  EXPECT_NEAR(r.per_class[0].ap, 1.0f, 1e-6f);  // TP ranked first
}

TEST(EvaluateTest, IouThresholdGatesTp) {
  std::vector<ImageEval> images;
  // Detection shifted so IoU ~ 0.39 (< 0.5 threshold).
  images.push_back(MakeImage(0, {D(0.58f, 0.5f, 0.2f, 0.2f, 0, 0.9f)},
                             {{B(0.5f, 0.5f, 0.2f, 0.2f), 0}}));
  EvalResult strict = Evaluate(images, 1, 0.5f);
  EXPECT_EQ(strict.per_class[0].true_positives, 0);
  EvalResult loose = Evaluate(images, 1, 0.3f);
  EXPECT_EQ(loose.per_class[0].true_positives, 1);
}

TEST(EvaluateTest, WrongClassNeverMatches) {
  std::vector<ImageEval> images;
  images.push_back(MakeImage(0, {D(0.5f, 0.5f, 0.2f, 0.2f, 1, 0.9f)},
                             {{B(0.5f, 0.5f, 0.2f, 0.2f), 0}}));
  EvalResult r = Evaluate(images, 2);
  EXPECT_EQ(r.per_class[0].true_positives, 0);
  EXPECT_EQ(r.per_class[1].false_positives, 1);
}

TEST(EvaluateTest, DetectionsNeverMatchAcrossImages) {
  std::vector<ImageEval> images;
  images.push_back(
      MakeImage(0, {D(0.5f, 0.5f, 0.2f, 0.2f, 0, 0.9f)}, {}));
  images.push_back(
      MakeImage(1, {}, {{B(0.5f, 0.5f, 0.2f, 0.2f), 0}}));
  EvalResult r = Evaluate(images, 1);
  EXPECT_EQ(r.per_class[0].true_positives, 0);
  EXPECT_EQ(r.per_class[0].false_positives, 1);
}

TEST(EvaluateTest, MapExcludesClassesWithoutTruths) {
  std::vector<ImageEval> images;
  images.push_back(MakeImage(0, {D(0.5f, 0.5f, 0.2f, 0.2f, 0, 0.9f)},
                             {{B(0.5f, 0.5f, 0.2f, 0.2f), 0}}));
  // Class 1 never appears in ground truth: excluded from mAP.
  EvalResult r = Evaluate(images, 2);
  EXPECT_NEAR(r.map, 1.0f, 1e-6f);
}

TEST(EvaluateTest, ConfThresholdAffectsF1NotAp) {
  std::vector<ImageEval> images;
  images.push_back(MakeImage(0, {D(0.5f, 0.5f, 0.2f, 0.2f, 0, 0.1f)},
                             {{B(0.5f, 0.5f, 0.2f, 0.2f), 0}}));
  EvalResult r = Evaluate(images, 1, 0.5f, /*conf_threshold=*/0.25f);
  EXPECT_NEAR(r.per_class[0].ap, 1.0f, 1e-6f);  // AP integrates all conf
  EXPECT_EQ(r.recall, 0.0f);                     // below the F1 threshold
}

TEST(IouSweepTest, PerfectDetectionsScoreOneEverywhere) {
  std::vector<ImageEval> images;
  images.push_back(MakeImage(0, {D(0.5f, 0.5f, 0.2f, 0.2f, 0, 0.9f)},
                             {{B(0.5f, 0.5f, 0.2f, 0.2f), 0}}));
  IouSweepResult r = EvaluateIouSweep(images, 1);
  ASSERT_EQ(r.thresholds.size(), 10u);
  EXPECT_NEAR(r.map_50, 1.0f, 1e-6f);
  EXPECT_NEAR(r.map_75, 1.0f, 1e-6f);
  EXPECT_NEAR(r.map_5095, 1.0f, 1e-6f);
}

TEST(IouSweepTest, MapIsNonIncreasingInThreshold) {
  // A slightly offset detection: IoU ~0.72, so AP drops to zero somewhere
  // inside the sweep and must never increase with the threshold.
  std::vector<ImageEval> images;
  images.push_back(MakeImage(0, {D(0.53f, 0.5f, 0.2f, 0.2f, 0, 0.9f)},
                             {{B(0.5f, 0.5f, 0.2f, 0.2f), 0}}));
  IouSweepResult r = EvaluateIouSweep(images, 1);
  for (size_t i = 1; i < r.map_at.size(); ++i) {
    EXPECT_LE(r.map_at[i], r.map_at[i - 1] + 1e-6f);
  }
  EXPECT_NEAR(r.map_50, 1.0f, 1e-6f);
  EXPECT_EQ(r.map_at.back(), 0.0f);  // IoU < 0.95
  EXPECT_GT(r.map_50, r.map_5095);
}

// --- Confusion matrix ---------------------------------------------------

TEST(ConfusionMatrixTest, AccumulatesAndNormalizes) {
  ConfusionMatrix cm(3);
  cm.Add(0, 0);
  cm.Add(0, 0);
  cm.Add(0, 1);
  cm.Add(1, 1);
  cm.Add(2, -1);  // predicted nothing -> None column
  EXPECT_EQ(cm.count(0, 0), 2);
  EXPECT_EQ(cm.count(0, 1), 1);
  EXPECT_EQ(cm.count(2, -1), 1);
  EXPECT_NEAR(cm.RowAccuracy(0), 2.0f / 3.0f, 1e-6f);
  EXPECT_NEAR(cm.OverallAccuracy(), 3.0f / 5.0f, 1e-6f);
}

TEST(ConfusionMatrixTest, RendersWithNames) {
  ConfusionMatrix cm(2);
  cm.Add(0, 1);
  const std::string s = cm.ToString({"Chapati", "Biryani"});
  EXPECT_NE(s.find("Chapati"), std::string::npos);
  EXPECT_NE(s.find("None"), std::string::npos);
}

}  // namespace
}  // namespace thali
