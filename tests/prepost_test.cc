// Tests for the pre/post-processing fast paths (PR "close the batch-1
// tail"): table-driven letterbox parity against the seed resize, the
// fused letterbox+quantize byte contract, the CollectAtLeast objectness
// pre-filter family conformance, exact equivalence of the raw-logit
// YOLO decode and the bucketed NMS against their references, and the
// end-to-end Detect pin across the THALI_NO_FASTPRE toggle.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string_view>
#include <vector>

#include "base/cpu_features.h"
#include "base/fastpre.h"
#include "base/rng.h"
#include "base/thread_pool.h"
#include "core/detector.h"
#include "darknet/cfg.h"
#include "darknet/model_zoo.h"
#include "eval/detection.h"
#include "image/image.h"
#include "image/image_prepost.h"
#include "nn/conv_layer.h"
#include "nn/exec_plan.h"
#include "nn/network.h"
#include "nn/yolo_layer.h"
#include "tensor/act_kernels.h"
#include "tensor/gemm_int8.h"
#include "tensor/tensor.h"

namespace thali {
namespace {

// Restores every global knob a test may flip so a failure cannot leak a
// forced kernel family or fast-path override into later tests.
class PrepostTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetMaxParallelism(1);
    internal::SetFastPreForTesting(-1);
    internal::SetResizeKernelForTesting(nullptr);
    internal::SetActKernelForTesting(nullptr);
    internal::SetInt8ForTesting(-1);
  }
};

uint32_t Bits(float v) {
  uint32_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

void ExpectBitwiseEqual(const std::vector<Detection>& a,
                        const std::vector<Detection>& b,
                        const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].class_id, b[i].class_id) << what << " det " << i;
    EXPECT_EQ(Bits(a[i].confidence), Bits(b[i].confidence))
        << what << " det " << i;
    EXPECT_EQ(Bits(a[i].box.x), Bits(b[i].box.x)) << what << " det " << i;
    EXPECT_EQ(Bits(a[i].box.y), Bits(b[i].box.y)) << what << " det " << i;
    EXPECT_EQ(Bits(a[i].box.w), Bits(b[i].box.w)) << what << " det " << i;
    EXPECT_EQ(Bits(a[i].box.h), Bits(b[i].box.h)) << what << " det " << i;
  }
}

// Clustered detections: boxes jittered around a handful of centers so
// many pairs overlap past any NMS threshold; optional confidence ties
// (values drawn from a small grid) exercise the sort's stability.
std::vector<Detection> MakeClusteredDets(Rng& rng, int n, int classes,
                                         bool tie_confs) {
  constexpr int kClusters = 5;
  float cx[kClusters], cy[kClusters];
  for (int k = 0; k < kClusters; ++k) {
    cx[k] = rng.NextFloat(0.15f, 0.85f);
    cy[k] = rng.NextFloat(0.15f, 0.85f);
  }
  std::vector<Detection> dets;
  dets.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int k = rng.NextInt(0, kClusters - 1);
    Detection d;
    d.box.x = cx[k] + rng.NextFloat(-0.05f, 0.05f);
    d.box.y = cy[k] + rng.NextFloat(-0.05f, 0.05f);
    d.box.w = rng.NextFloat(0.02f, 0.3f);
    d.box.h = rng.NextFloat(0.02f, 0.3f);
    d.class_id = rng.NextInt(0, classes - 1);
    d.confidence = tie_confs
                       ? 0.1f * static_cast<float>(rng.NextInt(1, 9))
                       : rng.NextFloat(0.01f, 1.0f);
    // A sprinkle of degenerate boxes: zero area must suppress/survive
    // exactly as the reference decides.
    if (i % 17 == 0) d.box.w = 0.0f;
    dets.push_back(d);
  }
  return dets;
}

TEST_F(PrepostTest, FastNmsMatchesReferenceOnClusteredBoxes) {
  for (uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(seed * 131 + 7);
    for (int n : {0, 1, 2, 7, 64, 200}) {
      for (float thr : {0.3f, 0.45f, 0.6f}) {
        const std::vector<Detection> dets =
            MakeClusteredDets(rng, n, /*classes=*/4, /*tie_confs=*/false);
        ExpectBitwiseEqual(internal::NmsFast(dets, thr, /*class_aware=*/true),
                           internal::NmsReference(dets, thr, true),
                           "class-aware");
        ExpectBitwiseEqual(internal::NmsFast(dets, thr, /*class_aware=*/false),
                           internal::NmsReference(dets, thr, false),
                           "class-agnostic");
      }
    }
  }
}

TEST_F(PrepostTest, FastNmsMatchesReferenceUnderConfidenceTies) {
  for (uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(seed * 977 + 3);
    const std::vector<Detection> dets =
        MakeClusteredDets(rng, 120, /*classes=*/3, /*tie_confs=*/true);
    for (float thr : {0.2f, 0.45f, 0.9f}) {
      ExpectBitwiseEqual(internal::NmsFast(dets, thr, true),
                         internal::NmsReference(dets, thr, true),
                         "tied class-aware");
      ExpectBitwiseEqual(internal::NmsFast(dets, thr, false),
                         internal::NmsReference(dets, thr, false),
                         "tied class-agnostic");
    }
  }
}

TEST_F(PrepostTest, NmsDispatchHonorsFastPreToggle) {
  Rng rng(42);
  const std::vector<Detection> dets = MakeClusteredDets(rng, 80, 4, false);
  internal::SetFastPreForTesting(0);
  const std::vector<Detection> ref = Nms(dets, 0.45f);
  internal::SetFastPreForTesting(1);
  const std::vector<Detection> fast = Nms(dets, 0.45f);
  ExpectBitwiseEqual(fast, ref, "dispatch");
}

TEST_F(PrepostTest, CollectAtLeastKeepsExactSemanticsIncludingNaN) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  // 19 elements so the AVX2 family runs both the vector body and the
  // scalar tail.
  const std::vector<float> x = {0.5f, -1.0f, 0.5f, nan,  2.0f,  0.49f, inf,
                                -inf, 0.5f,  3.0f, nan,  0.51f, 0.0f,  7.0f,
                                0.5f, -2.0f, 1.0f, 0.5f, 0.25f};
  const auto collect = [&](const char* family, float thr) {
    internal::SetActKernelForTesting(family);
    std::vector<int32_t> idx(x.size());
    const int64_t m = CollectAtLeast(
        x.data(), static_cast<int64_t>(x.size()), thr, idx.data());
    internal::SetActKernelForTesting(nullptr);
    idx.resize(static_cast<size_t>(m));
    return idx;
  };
  for (float thr : {0.5f, 0.0f, -inf, 100.0f}) {
    // Oracle: the exact negation of the reference decode's skip,
    // `if (obj < thr) continue` — NaN never compares less, so NaN
    // elements are always collected.
    std::vector<int32_t> want;
    for (size_t i = 0; i < x.size(); ++i) {
      if (!(x[i] < thr)) want.push_back(static_cast<int32_t>(i));
    }
    EXPECT_EQ(collect("scalar", thr), want) << "thr " << thr;
    if (CpuInfo().avx2) {
      EXPECT_EQ(collect("avx2", thr), want) << "thr " << thr;
    }
  }
}

Image RandomImage(uint64_t seed, int w, int h) {
  Rng rng(seed);
  Image img(w, h);
  for (int64_t i = 0; i < img.size(); ++i) img.data()[i] = rng.NextFloat();
  return img;
}

TEST_F(PrepostTest, ScalarLetterboxIsBitwiseIdenticalToSeedReference) {
  internal::SetResizeKernelForTesting("scalar");
  for (auto [w, h] : {std::pair{123, 77}, {200, 200}, {31, 190}, {97, 95}}) {
    const Image src = RandomImage(static_cast<uint64_t>(w * 1000 + h), w, h);
    const Letterbox ref = LetterboxImage(src, 96, 96);
    std::vector<float> dst(3 * 96 * 96, -1.0f);
    const LetterboxGeometry g = LetterboxIntoPlanes(src, 96, 96, dst.data());
    EXPECT_EQ(Bits(g.scale), Bits(ref.scale));
    EXPECT_EQ(g.pad_x, ref.pad_x);
    EXPECT_EQ(g.pad_y, ref.pad_y);
    ASSERT_EQ(ref.image.size(), static_cast<int64_t>(dst.size()));
    EXPECT_EQ(std::memcmp(ref.image.data(), dst.data(),
                          dst.size() * sizeof(float)),
              0)
        << w << "x" << h;
  }
}

TEST_F(PrepostTest, Avx2LetterboxStaysWithinToleranceOfScalar) {
  if (!CpuInfo().avx2 || !CpuInfo().fma) GTEST_SKIP() << "no AVX2+FMA";
  const Image src = RandomImage(99, 157, 83);
  std::vector<float> scalar(3 * 96 * 96), avx2(3 * 96 * 96);
  internal::SetResizeKernelForTesting("scalar");
  LetterboxIntoPlanes(src, 96, 96, scalar.data());
  internal::SetResizeKernelForTesting("avx2");
  EXPECT_STREQ(ResizeKernelName(), "avx2-resize");
  LetterboxIntoPlanes(src, 96, 96, avx2.data());
  for (size_t i = 0; i < scalar.size(); ++i) {
    // The AVX2 family reassociates the 4 bilinear taps into lerp FMAs;
    // inputs are in [0,1] so the drift is a few ulps.
    EXPECT_NEAR(scalar[i], avx2[i], 1e-5f) << "element " << i;
  }
}

TEST_F(PrepostTest, FusedQuantizeEmitsExactlyTheQuantizedLetterbox) {
  const Image src = RandomImage(7, 140, 101);
  const float scale = 0.031f;
  const float inv_scale = 1.0f / scale;
  const int32_t zp = 17;
  std::vector<const char*> families = {"scalar"};
  if (CpuInfo().avx2 && CpuInfo().fma) families.push_back("avx2");
  for (const char* family : families) {
    internal::SetResizeKernelForTesting(family);
    std::vector<float> planes(3 * 96 * 96);
    LetterboxIntoPlanes(src, 96, 96, planes.data());
    std::vector<uint8_t> want(planes.size());
    Int8QuantizeActivations(planes.data(),
                            static_cast<int64_t>(planes.size()), inv_scale,
                            zp, want.data());
    std::vector<uint8_t> got(planes.size(), 255);
    LetterboxIntoQuantizedPlanes(src, 96, 96, inv_scale, zp, got.data());
    EXPECT_EQ(std::memcmp(want.data(), got.data(), got.size()), 0) << family;
  }
}

TEST_F(PrepostTest, ReferenceLetterboxPadsExactlyGreyAroundContent) {
  // Satellite fix pin: LetterboxImage fills only the pad bands, so every
  // pad pixel is exactly 0.5 and content pixels come from the resize.
  const Image src = RandomImage(11, 50, 200);
  const Letterbox lb = LetterboxImage(src, 96, 96);
  ASSERT_GT(lb.pad_x, 0);
  for (int c = 0; c < 3; ++c) {
    for (int y = 0; y < 96; ++y) {
      for (int x = 0; x < 96; ++x) {
        const bool pad = x < lb.pad_x || x >= 96 - lb.pad_x;
        if (pad) {
          EXPECT_EQ(Bits(lb.image.at(c, y, x)), Bits(0.5f))
              << c << "," << y << "," << x;
        }
      }
    }
  }
}

BuiltNetwork BuildThaliNet() {
  Rng rng(4242);
  auto built = BuildNetworkFromCfg(YoloThaliCfg(YoloThaliOptions{}),
                                   /*batch_override=*/1, rng,
                                   ExecMode::kInference);
  THALI_CHECK_OK(built.status());
  return std::move(built).value();
}

TEST_F(PrepostTest, RawDecodeMatchesReferenceDecodeOnRealHeadTensors) {
  BuiltNetwork built = BuildThaliNet();
  built.net->set_defer_head_activation(true);
  Tensor input(built.net->input_shape());
  Rng irng(17);
  for (int64_t i = 0; i < input.size(); ++i) input[i] = irng.NextGaussian();

  internal::SetFastPreForTesting(1);
  built.net->Forward(input, /*train=*/false);
  ASSERT_FALSE(built.yolo_layers.empty());
  // Capture the fast decode at several thresholds, including the two
  // saturation edges.
  const float kThresholds[] = {0.0f, 0.05f, 0.25f, 0.9f, 1.0f};
  std::vector<std::vector<Detection>> fast;
  for (YoloLayer* head : built.yolo_layers) {
    for (float thr : kThresholds) {
      fast.push_back(head->GetDetections(0, thr, 96, 96));
    }
  }
  // Pin that the raw path actually engaged: the stored head planes hold
  // logits, not sigmoids (any raw value below 0 would sigmoid into
  // (0, 0.5), so the planes cannot be equal).
  std::vector<float> raw_head(static_cast<size_t>(
      built.yolo_layers[0]->output().size()));
  std::memcpy(raw_head.data(), built.yolo_layers[0]->output().data(),
              raw_head.size() * sizeof(float));

  internal::SetFastPreForTesting(0);
  built.net->Forward(input, /*train=*/false);
  EXPECT_NE(std::memcmp(raw_head.data(),
                        built.yolo_layers[0]->output().data(),
                        raw_head.size() * sizeof(float)),
            0)
      << "fast path never engaged";
  size_t slot = 0;
  int nonempty = 0;
  for (YoloLayer* head : built.yolo_layers) {
    for (float thr : kThresholds) {
      const std::vector<Detection> ref = head->GetDetections(0, thr, 96, 96);
      if (!ref.empty()) ++nonempty;
      ExpectBitwiseEqual(fast[slot++], ref, "decode");
    }
  }
  EXPECT_GT(nonempty, 0) << "decode comparison was vacuous";
}

TEST_F(PrepostTest, DetectIsBitwiseStableAcrossFastPreWithScalarResize) {
  internal::SetResizeKernelForTesting("scalar");
  auto det = Detector::FromCfg(YoloThaliCfg(YoloThaliOptions{}));
  THALI_CHECK_OK(det.status());
  const Image img = RandomImage(3, 160, 120);

  internal::SetFastPreForTesting(1);
  const std::vector<Detection> fast = det->Detect(img, 0.1f, 0.45f);
  internal::SetFastPreForTesting(0);
  const std::vector<Detection> ref = det->Detect(img, 0.1f, 0.45f);
  EXPECT_FALSE(ref.empty()) << "pipeline comparison was vacuous";
  ExpectBitwiseEqual(fast, ref, "detect");

  const Detector::StageTimes& st = det->last_stage_times();
  EXPECT_GT(st.forward_ms, 0.0);
  EXPECT_GE(st.preprocess_ms, 0.0);
  EXPECT_GE(st.postprocess_ms, 0.0);
}

TEST_F(PrepostTest, FusedQuantizedInputDetectMatchesFp32QuantizeRoute) {
  internal::SetInt8ForTesting(1);
  internal::SetResizeKernelForTesting("scalar");
  auto det = Detector::FromCfg(YoloThaliCfg(YoloThaliOptions{}));
  THALI_CHECK_OK(det.status());
  Network& net = det->network();
  for (int i = 0; i < net.num_layers(); ++i) {
    if (std::string_view(net.layer(i).kind()) == "convolutional") {
      static_cast<ConvLayer&>(net.layer(i)).FoldBatchNorm();
    }
  }
  // One min/max calibration pass over a representative letterboxed
  // image, then replan so the input chain arms.
  Tensor calib(net.input_shape());
  Rng crng(23);
  for (int64_t i = 0; i < calib.size(); ++i) calib[i] = crng.NextFloat();
  net.set_calib_phase(CalibPhase::kRange);
  net.Forward(calib, /*train=*/false);
  net.set_calib_phase(CalibPhase::kOff);
  for (int i = 0; i < net.num_layers(); ++i) {
    Layer& l = net.layer(i);
    if (std::string_view(l.kind()) != "convolutional") continue;
    if (l.plan().conv_algo != ConvAlgo::kQuantInt8 &&
        l.plan().conv_algo != ConvAlgo::kQuantInt8Direct1x1) {
      continue;
    }
    static_cast<ConvLayer&>(l).FinalizeCalibration(100.0);
  }
  THALI_CHECK_OK(net.ReplanInference());
  ASSERT_TRUE(net.exec_plan().input_u8);

  const Image img = RandomImage(5, 130, 100);
  // Fast route: fused letterbox-quantize stages the u8 input directly.
  internal::SetFastPreForTesting(1);
  const std::vector<Detection> fused = det->Detect(img, 0.1f, 0.45f);
  // Reference route: seed letterbox into fp32 staging, quantized inside
  // Network::Forward by the same shared quantizer.
  internal::SetFastPreForTesting(0);
  const std::vector<Detection> ref = det->Detect(img, 0.1f, 0.45f);
  EXPECT_FALSE(ref.empty()) << "fused-input comparison was vacuous";
  ExpectBitwiseEqual(fused, ref, "fused quantized input");
}

}  // namespace
}  // namespace thali
