// Forward-semantics tests for each layer type, the optimizer schedule, and
// network-level error handling. (Backward correctness is covered by the
// finite-difference suite in nn_gradient_test.cc.)

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "base/rng.h"
#include "nn/activation.h"
#include "nn/conv_layer.h"
#include "nn/maxpool_layer.h"
#include "nn/network.h"
#include "nn/optimizer.h"
#include "nn/route_layer.h"
#include "nn/shortcut_layer.h"
#include "nn/upsample_layer.h"
#include "nn/yolo_layer.h"
#include "tensor/ops.h"

namespace thali {
namespace {

TEST(ActivationTest, ParseAndNames) {
  EXPECT_EQ(*ActivationFromString("leaky"), Activation::kLeaky);
  EXPECT_EQ(*ActivationFromString("mish"), Activation::kMish);
  EXPECT_FALSE(ActivationFromString("swish").ok());
  EXPECT_STREQ(ActivationToString(Activation::kLogistic), "logistic");
}

TEST(ActivationTest, KnownValues) {
  float x[4] = {-2.0f, -0.5f, 0.0f, 3.0f};
  ApplyActivation(Activation::kLeaky, x, 4);
  EXPECT_FLOAT_EQ(x[0], -0.2f);
  EXPECT_FLOAT_EQ(x[3], 3.0f);

  float r[2] = {-1.0f, 2.0f};
  ApplyActivation(Activation::kRelu, r, 2);
  EXPECT_FLOAT_EQ(r[0], 0.0f);
  EXPECT_FLOAT_EQ(r[1], 2.0f);

  float m[1] = {0.0f};
  ApplyActivation(Activation::kMish, m, 1);
  EXPECT_NEAR(m[0], 0.0f, 1e-6f);  // mish(0) = 0

  float big[1] = {10.0f};
  ApplyActivation(Activation::kMish, big, 1);
  EXPECT_NEAR(big[0], 10.0f, 1e-3f);  // mish(x) -> x for large x

  float s[1] = {0.0f};
  ApplyActivation(Activation::kLogistic, s, 1);
  EXPECT_FLOAT_EQ(s[0], 0.5f);
}

std::unique_ptr<ConvLayer> Conv(int filters, int ksize, int stride, int pad,
                                bool bn, Activation act) {
  ConvLayer::Options o;
  o.filters = filters;
  o.ksize = ksize;
  o.stride = stride;
  o.pad = pad;
  o.batch_normalize = bn;
  o.activation = act;
  return std::make_unique<ConvLayer>(o);
}

TEST(ConvLayerTest, IdentityKernelPassesThrough) {
  // 1x1 conv, identity weight, zero bias: output == input.
  Network net(4, 4, 2, 1);
  net.Add(Conv(2, 1, 1, 0, false, Activation::kLinear));
  THALI_CHECK_OK(net.Finalize());
  auto& conv = static_cast<ConvLayer&>(net.layer(0));
  conv.weights().Zero();
  conv.weights()[0] = 1.0f;  // out0 <- in0
  conv.weights()[3] = 1.0f;  // out1 <- in1

  Tensor input(Shape({1, 2, 4, 4}));
  Rng rng(1);
  for (int64_t i = 0; i < input.size(); ++i) input[i] = rng.NextGaussian();
  const Tensor& out = net.Forward(input);
  EXPECT_LT(MaxAbsDiff(out, input), 1e-6f);
}

TEST(ConvLayerTest, BiasAdds) {
  Network net(2, 2, 1, 1);
  net.Add(Conv(1, 1, 1, 0, false, Activation::kLinear));
  THALI_CHECK_OK(net.Finalize());
  auto& conv = static_cast<ConvLayer&>(net.layer(0));
  conv.weights()[0] = 2.0f;
  conv.biases()[0] = 0.5f;
  Tensor input(Shape({1, 1, 2, 2}), {1, 2, 3, 4});
  const Tensor& out = net.Forward(input);
  EXPECT_FLOAT_EQ(out[0], 2.5f);
  EXPECT_FLOAT_EQ(out[3], 8.5f);
}

TEST(ConvLayerTest, KnownConvolution3x3) {
  // Sum-kernel over a 3x3 image with pad 1: center output = sum of image.
  Network net(3, 3, 1, 1);
  net.Add(Conv(1, 3, 1, 1, false, Activation::kLinear));
  THALI_CHECK_OK(net.Finalize());
  auto& conv = static_cast<ConvLayer&>(net.layer(0));
  conv.weights().Fill(1.0f);
  Tensor input(Shape({1, 1, 3, 3}), {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const Tensor& out = net.Forward(input);
  EXPECT_FLOAT_EQ(out[4], 45.0f);            // center sees all 9
  EXPECT_FLOAT_EQ(out[0], 1 + 2 + 4 + 5.0f);  // corner sees 4
}

TEST(ConvLayerTest, StrideReducesResolution) {
  Network net(8, 8, 3, 2);
  net.Add(Conv(5, 3, 2, 1, false, Activation::kLeaky));
  THALI_CHECK_OK(net.Finalize());
  EXPECT_EQ(net.layer(0).output_shape(), Shape({2, 5, 4, 4}));
}

TEST(ConvLayerTest, BatchNormTrainOutputIsNormalized) {
  Network net(6, 6, 2, 4);
  net.Add(Conv(3, 3, 1, 1, true, Activation::kLinear));
  THALI_CHECK_OK(net.Finalize());
  auto& conv = static_cast<ConvLayer&>(net.layer(0));
  Rng rng(3);
  conv.InitWeights(rng);

  Tensor input(Shape({4, 2, 6, 6}));
  for (int64_t i = 0; i < input.size(); ++i) {
    input[i] = rng.NextGaussian(2.0f, 3.0f);
  }
  const Tensor& out = net.Forward(input, /*train=*/true);
  // Per-channel mean ~ beta(=0), variance ~ gamma^2(=1).
  const int64_t spatial = 36;
  for (int f = 0; f < 3; ++f) {
    double sum = 0, sum2 = 0;
    for (int b = 0; b < 4; ++b) {
      const float* p = out.data() + (b * 3 + f) * spatial;
      for (int64_t i = 0; i < spatial; ++i) {
        sum += p[i];
        sum2 += static_cast<double>(p[i]) * p[i];
      }
    }
    const double n = 4 * spatial;
    EXPECT_NEAR(sum / n, 0.0, 1e-4);
    EXPECT_NEAR(sum2 / n, 1.0, 1e-2);
  }
}

TEST(ConvLayerTest, FoldBatchNormPreservesInference) {
  Network net(6, 6, 2, 2);
  net.Add(Conv(4, 3, 1, 1, true, Activation::kLeaky));
  THALI_CHECK_OK(net.Finalize());
  auto& conv = static_cast<ConvLayer&>(net.layer(0));
  Rng rng(5);
  conv.InitWeights(rng);
  // Install non-trivial rolling statistics and affine params.
  for (int f = 0; f < 4; ++f) {
    conv.rolling_mean()[f] = rng.NextGaussian(0.0f, 0.5f);
    conv.rolling_var()[f] = rng.NextFloat(0.5f, 2.0f);
    conv.scales()[f] = rng.NextFloat(0.5f, 1.5f);
    conv.biases()[f] = rng.NextGaussian(0.0f, 0.3f);
  }

  Tensor input(Shape({2, 2, 6, 6}));
  for (int64_t i = 0; i < input.size(); ++i) input[i] = rng.NextGaussian();
  Tensor before = net.Forward(input, /*train=*/false);

  conv.FoldBatchNorm();
  const Tensor& after = net.Forward(input, /*train=*/false);
  EXPECT_LT(MaxAbsDiff(before, after), 1e-4f);
}

TEST(MaxPoolLayerTest, Known2x2Pooling) {
  Network net(4, 4, 1, 1);
  net.Add(std::make_unique<MaxPoolLayer>(MaxPoolLayer::Options{2, 2, -1}));
  THALI_CHECK_OK(net.Finalize());
  Tensor input(Shape({1, 1, 4, 4}),
               {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  const Tensor& out = net.Forward(input);
  // Darknet padding size-1 with offset 0: windows anchored at even pixels.
  EXPECT_EQ(out.shape(), Shape({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out[0], 6.0f);
  EXPECT_FLOAT_EQ(out[1], 8.0f);
  EXPECT_FLOAT_EQ(out[2], 14.0f);
  EXPECT_FLOAT_EQ(out[3], 16.0f);
}

TEST(MaxPoolLayerTest, SppStride1KeepsResolution) {
  Network net(6, 6, 3, 2);
  net.Add(std::make_unique<MaxPoolLayer>(MaxPoolLayer::Options{5, 1, -1}));
  THALI_CHECK_OK(net.Finalize());
  EXPECT_EQ(net.layer(0).output_shape(), Shape({2, 3, 6, 6}));
  // Constant input stays constant under max pooling.
  Tensor input(Shape({2, 3, 6, 6}));
  input.Fill(2.5f);
  const Tensor& out = net.Forward(input);
  for (int64_t i = 0; i < out.size(); ++i) EXPECT_FLOAT_EQ(out[i], 2.5f);
}

TEST(UpsampleLayerTest, NearestNeighborValues) {
  Network net(2, 2, 1, 1);
  net.Add(std::make_unique<UpsampleLayer>(2));
  THALI_CHECK_OK(net.Finalize());
  Tensor input(Shape({1, 1, 2, 2}), {1, 2, 3, 4});
  const Tensor& out = net.Forward(input);
  EXPECT_EQ(out.shape(), Shape({1, 1, 4, 4}));
  EXPECT_FLOAT_EQ(out[0], 1.0f);
  EXPECT_FLOAT_EQ(out[1], 1.0f);
  EXPECT_FLOAT_EQ(out[2], 2.0f);
  EXPECT_FLOAT_EQ(out[5], 1.0f);
  EXPECT_FLOAT_EQ(out[15], 4.0f);
}

TEST(RouteLayerTest, ConcatenatesChannels) {
  Network net(3, 3, 1, 1);
  net.Add(Conv(2, 1, 1, 0, false, Activation::kLinear));  // 0
  net.Add(Conv(3, 1, 1, 0, false, Activation::kLinear));  // 1
  RouteLayer::Options ro;
  ro.layers = {0, 1};
  net.Add(std::make_unique<RouteLayer>(ro));
  THALI_CHECK_OK(net.Finalize());
  auto& c0 = static_cast<ConvLayer&>(net.layer(0));
  auto& c1 = static_cast<ConvLayer&>(net.layer(1));
  c0.weights().Fill(1.0f);
  c1.weights().Fill(2.0f);

  Tensor input(Shape({1, 1, 3, 3}));
  input.Fill(1.0f);
  net.Forward(input);
  const Tensor& out = net.layer(2).output();
  EXPECT_EQ(out.shape(), Shape({1, 5, 3, 3}));
  EXPECT_FLOAT_EQ(out[0], 1.0f);      // from layer 0 (1 input channel of 1s)
  // Layer 1 convolves layer 0's two channels of 1s with weight 2: 2*2 = 4.
  EXPECT_FLOAT_EQ(out[2 * 9], 4.0f);
}

TEST(RouteLayerTest, GroupsTakeSecondHalf) {
  Network net(2, 2, 4, 1);
  RouteLayer::Options ro;
  ro.layers = {-1};
  ro.groups = 2;
  ro.group_id = 1;
  // Route directly off a conv that tags each channel with its index.
  net.Add(Conv(4, 1, 1, 0, false, Activation::kLinear));
  net.Add(std::make_unique<RouteLayer>(ro));
  THALI_CHECK_OK(net.Finalize());
  auto& conv = static_cast<ConvLayer&>(net.layer(0));
  conv.weights().Zero();
  for (int f = 0; f < 4; ++f) {
    conv.weights()[f * 4 + 0] = static_cast<float>(f + 1);  // out_f = (f+1)*in0
  }
  Tensor input(Shape({1, 4, 2, 2}));
  for (int64_t i = 0; i < 4; ++i) input[i] = 1.0f;  // channel 0 = 1
  net.Forward(input);
  const Tensor& out = net.layer(1).output();
  EXPECT_EQ(out.shape(), Shape({1, 2, 2, 2}));
  EXPECT_FLOAT_EQ(out[0], 3.0f);  // channel 2 of the conv
  EXPECT_FLOAT_EQ(out[4], 4.0f);  // channel 3
}

TEST(ShortcutLayerTest, AddsResidual) {
  Network net(2, 2, 1, 1);
  net.Add(Conv(1, 1, 1, 0, false, Activation::kLinear));  // 0: x2
  net.Add(Conv(1, 1, 1, 0, false, Activation::kLinear));  // 1: x3 of prev
  ShortcutLayer::Options so;
  so.from = 0;
  net.Add(std::make_unique<ShortcutLayer>(so));
  THALI_CHECK_OK(net.Finalize());
  static_cast<ConvLayer&>(net.layer(0)).weights()[0] = 2.0f;
  static_cast<ConvLayer&>(net.layer(1)).weights()[0] = 3.0f;
  Tensor input(Shape({1, 1, 2, 2}));
  input.Fill(1.0f);
  net.Forward(input);
  // shortcut = conv1(conv0(x)) + conv0(x) = 6 + 2 = 8.
  EXPECT_FLOAT_EQ(net.layer(2).output()[0], 8.0f);
}

TEST(ShortcutLayerTest, RejectsShapeMismatch) {
  Network net(4, 4, 1, 1);
  net.Add(Conv(2, 3, 2, 1, false, Activation::kLinear));
  net.Add(Conv(2, 1, 1, 0, false, Activation::kLinear));
  ShortcutLayer::Options so;
  so.from = -3;  // the network input-sized layer does not exist; use 0's input
  net.Add(std::make_unique<ShortcutLayer>(so));
  EXPECT_FALSE(net.Finalize().ok());
}

TEST(YoloLayerTest, ForwardActivatesChannels) {
  YoloLayer::Options yo;
  yo.anchors = {{10, 10}};
  yo.mask = {0};
  yo.classes = 2;
  yo.scale_x_y = 1.0f;
  Network net(2, 2, 7, 1);  // 1 anchor * (5+2) channels
  net.Add(std::make_unique<YoloLayer>(yo));
  THALI_CHECK_OK(net.Finalize());

  Tensor input(Shape({1, 7, 2, 2}));
  input.Fill(0.0f);
  const Tensor& out = net.Forward(input);
  // x,y,obj,cls sigmoided to 0.5; w,h raw 0.
  EXPECT_FLOAT_EQ(out[0], 0.5f);              // x plane
  EXPECT_FLOAT_EQ(out[2 * 4], 0.0f);          // w plane stays raw
  EXPECT_FLOAT_EQ(out[4 * 4], 0.5f);          // obj plane
}

TEST(YoloLayerTest, ScaleXYExpandsRange) {
  YoloLayer::Options yo;
  yo.anchors = {{10, 10}};
  yo.mask = {0};
  yo.classes = 1;
  yo.scale_x_y = 1.2f;
  Network net(1, 1, 6, 1);
  net.Add(std::make_unique<YoloLayer>(yo));
  THALI_CHECK_OK(net.Finalize());
  Tensor input(Shape({1, 6, 1, 1}));
  input[0] = 100.0f;  // sigmoid -> 1
  const Tensor& out = net.Forward(input);
  EXPECT_NEAR(out[0], 1.2f - 0.1f, 1e-4f);  // 1*1.2 - 0.5*0.2 = 1.1
}

TEST(YoloLayerTest, GetDetectionsDecodesBox) {
  YoloLayer::Options yo;
  yo.anchors = {{32, 16}};
  yo.mask = {0};
  yo.classes = 1;
  Network net(4, 4, 6, 1);
  net.Add(std::make_unique<YoloLayer>(yo));
  THALI_CHECK_OK(net.Finalize());

  Tensor input(Shape({1, 6, 4, 4}));
  input.Fill(-20.0f);  // everything off
  // Cell (y=1, x=2): x=y=0 (sigmoid 0.5), w=h=0 (exp 1), obj & class on.
  auto at = [&](int attr) { return (attr * 4 + 1) * 4 + 2; };
  input[at(0)] = 0.0f;
  input[at(1)] = 0.0f;
  input[at(2)] = 0.0f;
  input[at(3)] = 0.0f;
  input[at(4)] = 20.0f;
  input[at(5)] = 20.0f;
  net.Forward(input);

  auto* yolo = static_cast<YoloLayer*>(&net.layer(0));
  auto dets = yolo->GetDetections(0, 0.5f, 64, 64);
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_NEAR(dets[0].box.x, (2 + 0.5f) / 4.0f, 1e-5f);
  EXPECT_NEAR(dets[0].box.y, (1 + 0.5f) / 4.0f, 1e-5f);
  EXPECT_NEAR(dets[0].box.w, 32.0f / 64.0f, 1e-5f);
  EXPECT_NEAR(dets[0].box.h, 16.0f / 64.0f, 1e-5f);
  EXPECT_GT(dets[0].confidence, 0.99f);
}

TEST(YoloLayerTest, RejectsWrongChannelCount) {
  YoloLayer::Options yo;
  yo.anchors = {{10, 10}};
  yo.mask = {0};
  yo.classes = 3;
  Network net(2, 2, 7, 1);  // needs 8 channels
  net.Add(std::make_unique<YoloLayer>(yo));
  EXPECT_FALSE(net.Finalize().ok());
}

TEST(LrPolicyTest, BurnInAndSteps) {
  LrPolicy p;
  p.base_lr = 1.0f;
  p.burn_in = 100;
  p.steps = {1000, 2000};
  p.scales = {0.1f, 0.1f};
  // Quartic warm-up.
  EXPECT_NEAR(p.LearningRateAt(49), std::pow(0.5f, 4.0f), 1e-4f);
  EXPECT_NEAR(p.LearningRateAt(100), 1.0f, 1e-5f);
  EXPECT_NEAR(p.LearningRateAt(999), 1.0f, 1e-5f);
  EXPECT_NEAR(p.LearningRateAt(1000), 0.1f, 1e-6f);
  EXPECT_NEAR(p.LearningRateAt(2500), 0.01f, 1e-7f);
}

TEST(SgdOptimizerTest, SingleStepMatchesHandComputation) {
  Network net(2, 2, 1, 1);
  net.Add(Conv(1, 1, 1, 0, false, Activation::kLinear));
  THALI_CHECK_OK(net.Finalize());
  auto& conv = static_cast<ConvLayer&>(net.layer(0));
  conv.weights()[0] = 1.0f;

  SgdOptimizer::Options so;
  so.momentum = 0.9f;
  so.weight_decay = 0.0f;
  so.lr.base_lr = 0.1f;
  SgdOptimizer opt(so);

  // Seed a gradient of 2.0 manually.
  conv.Params()[0].grad->data()[0] = 2.0f;
  opt.Step(net, /*iteration=*/1000);
  // v = -lr*grad = -0.2; w = 1 - 0.2 = 0.8. Grad cleared.
  EXPECT_NEAR(conv.weights()[0], 0.8f, 1e-6f);
  EXPECT_EQ(conv.Params()[0].grad->data()[0], 0.0f);

  conv.Params()[0].grad->data()[0] = 2.0f;
  opt.Step(net, 1000);
  // v = 0.9*(-0.2) - 0.2 = -0.38; w = 0.8 - 0.38 = 0.42.
  EXPECT_NEAR(conv.weights()[0], 0.42f, 1e-6f);
}

TEST(SgdOptimizerTest, FrozenLayersDoNotMove) {
  Network net(2, 2, 1, 1);
  net.Add(Conv(1, 1, 1, 0, false, Activation::kLinear));
  net.Add(Conv(1, 1, 1, 0, false, Activation::kLinear));
  THALI_CHECK_OK(net.Finalize());
  net.FreezeUpTo(1);
  auto& frozen = static_cast<ConvLayer&>(net.layer(0));
  auto& live = static_cast<ConvLayer&>(net.layer(1));
  frozen.weights()[0] = 1.0f;
  live.weights()[0] = 1.0f;
  frozen.Params()[0].grad->data()[0] = 1.0f;
  live.Params()[0].grad->data()[0] = 1.0f;

  SgdOptimizer::Options so;
  so.weight_decay = 0;
  so.lr.base_lr = 0.1f;
  SgdOptimizer opt(so);
  opt.Step(net, 100);
  EXPECT_FLOAT_EQ(frozen.weights()[0], 1.0f);
  EXPECT_LT(live.weights()[0], 1.0f);
}

TEST(NetworkTest, RejectsEmptyNetwork) {
  Network net(4, 4, 3, 1);
  EXPECT_FALSE(net.Finalize().ok());
}

TEST(NetworkTest, RouteToFutureLayerRejected) {
  Network net(4, 4, 3, 1);
  RouteLayer::Options ro;
  ro.layers = {5};
  net.Add(std::make_unique<RouteLayer>(ro));
  // ResolveIndex CHECKs on out-of-range; an in-range forward reference is
  // a Status error.
  net.Add(Conv(2, 1, 1, 0, false, Activation::kLinear));
  net.Add(Conv(2, 1, 1, 0, false, Activation::kLinear));
  net.Add(Conv(2, 1, 1, 0, false, Activation::kLinear));
  net.Add(Conv(2, 1, 1, 0, false, Activation::kLinear));
  net.Add(Conv(2, 1, 1, 0, false, Activation::kLinear));
  EXPECT_FALSE(net.Finalize().ok());
}

TEST(NetworkTest, NumParametersCountsConvParams) {
  Network net(4, 4, 3, 1);
  net.Add(Conv(2, 3, 1, 1, false, Activation::kLinear));
  THALI_CHECK_OK(net.Finalize());
  // weights 2*3*3*3 = 54 + biases 2 = 56.
  EXPECT_EQ(net.NumParameters(), 56);
}

TEST(NetworkTest, WorkspaceSizedForLargestLayer) {
  Network net(8, 8, 3, 1);
  net.Add(Conv(4, 3, 1, 1, false, Activation::kLinear));
  net.Add(Conv(2, 1, 1, 0, false, Activation::kLinear));
  THALI_CHECK_OK(net.Finalize());
  EXPECT_GE(net.workspace_size(), 3 * 3 * 3 * 8 * 8);
}

}  // namespace
}  // namespace thali
