// Property-based finite-difference verification of the analytic backward
// passes: for assorted small layer stacks, analytic input/parameter
// gradients must agree with central differences of a scalar loss.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "base/rng.h"
#include "nn/conv_layer.h"
#include "nn/gradient_check.h"
#include "nn/maxpool_layer.h"
#include "nn/network.h"
#include "nn/route_layer.h"
#include "nn/shortcut_layer.h"
#include "nn/upsample_layer.h"
#include "nn/yolo_layer.h"

namespace thali {
namespace {

std::unique_ptr<ConvLayer> Conv(int filters, int ksize, int stride, int pad,
                                bool bn, Activation act) {
  ConvLayer::Options o;
  o.filters = filters;
  o.ksize = ksize;
  o.stride = stride;
  o.pad = pad;
  o.batch_normalize = bn;
  o.activation = act;
  return std::make_unique<ConvLayer>(o);
}

Tensor RandomTensor(const Shape& shape, Rng& rng, float scale = 1.0f) {
  Tensor t(shape);
  for (int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = rng.NextGaussian(0.0f, scale);
  }
  return t;
}

void InitNet(Network& net, Rng& rng) {
  for (int i = 0; i < net.num_layers(); ++i) {
    if (std::string_view(net.layer(i).kind()) == "convolutional") {
      static_cast<ConvLayer&>(net.layer(i)).InitWeights(rng);
    }
  }
}

// Runs both input and parameter checks. A genuine backward bug (sign
// flip, missing chain factor, wrong indexing) corrupts essentially every
// probe; a probe that straddles a leaky/maxpool kink corrupts only
// itself. So: at most 10% of probes may exceed `tol`, and no probe may
// reach sign-flip magnitude.
void ExpectGradientsMatch(Network& net, Rng& rng, float tol = 5e-2f) {
  const Tensor input = RandomTensor(net.input_shape(), rng, 0.5f);
  const Tensor& out = net.Forward(input, /*train=*/true);
  const Tensor target = RandomTensor(out.shape(), rng, 0.5f);
  const ScalarLoss loss = SquaredErrorLoss(target);

  GradCheckResult in = CheckInputGradients(net, input, loss, 40, rng);
  EXPECT_GT(in.checked, 0);
  EXPECT_LE(in.FractionAbove(tol), 0.10f)
      << "input gradients diverge, max_rel=" << in.max_rel_err;
  EXPECT_LT(in.max_rel_err, 1.2f) << "input gradient sign/scale error";

  GradCheckResult par = CheckParamGradients(net, input, loss, 40, rng);
  EXPECT_GT(par.checked, 0);
  EXPECT_LE(par.FractionAbove(tol), 0.10f)
      << "parameter gradients diverge, max_rel=" << par.max_rel_err;
  EXPECT_LT(par.max_rel_err, 1.2f) << "parameter gradient sign/scale error";
}

TEST(GradientCheck, PlainConvLinear) {
  Network net(6, 6, 2, 2);
  net.Add(Conv(3, 3, 1, 1, false, Activation::kLinear));
  THALI_CHECK_OK(net.Finalize());
  Rng rng(1);
  InitNet(net, rng);
  ExpectGradientsMatch(net, rng);
}

TEST(GradientCheck, ConvLeakyStride2) {
  Network net(8, 8, 3, 2);
  net.Add(Conv(4, 3, 2, 1, false, Activation::kLeaky));
  THALI_CHECK_OK(net.Finalize());
  Rng rng(2);
  InitNet(net, rng);
  ExpectGradientsMatch(net, rng);
}

TEST(GradientCheck, ConvBatchNormMish) {
  Network net(6, 6, 2, 3);
  net.Add(Conv(4, 3, 1, 1, true, Activation::kMish));
  THALI_CHECK_OK(net.Finalize());
  Rng rng(3);
  InitNet(net, rng);
  ExpectGradientsMatch(net, rng);
}

TEST(GradientCheck, TwoConvStackWithBn) {
  Network net(8, 8, 2, 2);
  net.Add(Conv(4, 3, 1, 1, true, Activation::kLeaky));
  net.Add(Conv(3, 1, 1, 0, true, Activation::kMish));
  THALI_CHECK_OK(net.Finalize());
  Rng rng(4);
  InitNet(net, rng);
  ExpectGradientsMatch(net, rng);
}

TEST(GradientCheck, MaxPool) {
  Network net(8, 8, 2, 2);
  net.Add(Conv(3, 3, 1, 1, false, Activation::kLeaky));
  net.Add(std::make_unique<MaxPoolLayer>(MaxPoolLayer::Options{2, 2, -1}));
  THALI_CHECK_OK(net.Finalize());
  Rng rng(5);
  InitNet(net, rng);
  ExpectGradientsMatch(net, rng);
}

TEST(GradientCheck, SppStyleMaxPoolStride1) {
  Network net(6, 6, 2, 2);
  net.Add(Conv(3, 3, 1, 1, false, Activation::kLinear));
  net.Add(std::make_unique<MaxPoolLayer>(MaxPoolLayer::Options{5, 1, -1}));
  THALI_CHECK_OK(net.Finalize());
  Rng rng(6);
  InitNet(net, rng);
  ExpectGradientsMatch(net, rng);
}

TEST(GradientCheck, Upsample) {
  Network net(6, 6, 2, 2);
  net.Add(Conv(3, 3, 1, 1, false, Activation::kLeaky));
  net.Add(std::make_unique<UpsampleLayer>(2));
  THALI_CHECK_OK(net.Finalize());
  Rng rng(7);
  InitNet(net, rng);
  ExpectGradientsMatch(net, rng);
}

TEST(GradientCheck, RouteConcat) {
  Network net(6, 6, 2, 2);
  net.Add(Conv(3, 3, 1, 1, false, Activation::kLeaky));   // 0
  net.Add(Conv(4, 3, 1, 1, false, Activation::kLeaky));   // 1
  RouteLayer::Options ro;
  ro.layers = {0, 1};
  net.Add(std::make_unique<RouteLayer>(ro));              // 2: 7 channels
  net.Add(Conv(2, 1, 1, 0, false, Activation::kLinear));  // 3
  THALI_CHECK_OK(net.Finalize());
  Rng rng(8);
  InitNet(net, rng);
  ExpectGradientsMatch(net, rng);
}

TEST(GradientCheck, RouteGroups) {
  Network net(6, 6, 2, 2);
  net.Add(Conv(4, 3, 1, 1, false, Activation::kLeaky));  // 0
  RouteLayer::Options ro;
  ro.layers = {-1};
  ro.groups = 2;
  ro.group_id = 1;
  net.Add(std::make_unique<RouteLayer>(ro));              // 1: 2 channels
  net.Add(Conv(2, 3, 1, 1, false, Activation::kLinear));  // 2
  THALI_CHECK_OK(net.Finalize());
  Rng rng(9);
  InitNet(net, rng);
  ExpectGradientsMatch(net, rng);
}

TEST(GradientCheck, Shortcut) {
  Network net(6, 6, 3, 2);
  net.Add(Conv(4, 3, 1, 1, false, Activation::kLeaky));  // 0
  net.Add(Conv(4, 3, 1, 1, false, Activation::kLeaky));  // 1
  ShortcutLayer::Options so;
  so.from = 0;
  so.activation = Activation::kLeaky;
  net.Add(std::make_unique<ShortcutLayer>(so));           // 2
  net.Add(Conv(2, 1, 1, 0, false, Activation::kLinear));  // 3
  THALI_CHECK_OK(net.Finalize());
  Rng rng(10);
  InitNet(net, rng);
  ExpectGradientsMatch(net, rng);
}

// Parameterized sweep: random conv geometries must all pass the check.
struct ConvGeom {
  int in_c, filters, ksize, stride, pad, width;
  bool bn;
  Activation act;
};

class ConvGeometrySweep : public ::testing::TestWithParam<ConvGeom> {};

TEST_P(ConvGeometrySweep, GradientsMatch) {
  const ConvGeom g = GetParam();
  Network net(g.width, g.width, g.in_c, 2);
  ConvLayer::Options o;
  o.filters = g.filters;
  o.ksize = g.ksize;
  o.stride = g.stride;
  o.pad = g.pad;
  o.batch_normalize = g.bn;
  o.activation = g.act;
  net.Add(std::make_unique<ConvLayer>(o));
  THALI_CHECK_OK(net.Finalize());
  Rng rng(42 + g.filters);
  InitNet(net, rng);
  ExpectGradientsMatch(net, rng);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGeometrySweep,
    ::testing::Values(
        ConvGeom{1, 2, 1, 1, 0, 5, false, Activation::kLinear},
        ConvGeom{2, 3, 3, 1, 1, 6, false, Activation::kRelu},
        ConvGeom{3, 2, 3, 2, 1, 8, false, Activation::kLeaky},
        ConvGeom{2, 4, 5, 1, 2, 7, false, Activation::kMish},
        ConvGeom{2, 2, 3, 1, 1, 6, true, Activation::kLeaky},
        ConvGeom{4, 3, 1, 1, 0, 5, true, Activation::kMish},
        ConvGeom{2, 3, 3, 2, 1, 9, true, Activation::kLinear},
        ConvGeom{3, 6, 3, 1, 1, 6, true, Activation::kLogistic}));

// The YOLO head: finite differences of the full detection loss with
// respect to the head's input logits must match the seeded deltas.
TEST(GradientCheck, YoloLossDeltas) {
  const int classes = 3;
  const int n_anchors = 2;
  const int gw = 4, gh = 4, net_w = 32, net_h = 32;
  const int channels = n_anchors * (5 + classes);

  YoloLayer::Options yo;
  yo.anchors = {{8, 8}, {16, 20}};
  yo.mask = {0, 1};
  yo.classes = classes;
  yo.ignore_thresh = 0.7f;
  yo.scale_x_y = 1.1f;
  yo.iou_normalizer = 0.5f;

  Network net(gw, gh, channels, 2);
  net.Add(std::make_unique<YoloLayer>(yo));
  THALI_CHECK_OK(net.Finalize());

  Rng rng(77);
  Tensor input = RandomTensor(net.input_shape(), rng, 0.8f);

  TruthBatch truths(2);
  truths[0].push_back({Box{0.4f, 0.4f, 0.3f, 0.35f}, 1});
  truths[0].push_back({Box{0.75f, 0.7f, 0.2f, 0.25f}, 0});
  truths[1].push_back({Box{0.5f, 0.55f, 0.5f, 0.4f}, 2});

  auto* yolo = static_cast<YoloLayer*>(&net.layer(0));
  auto loss_value = [&](const Tensor& in) -> double {
    net.Forward(in, /*train=*/true);
    net.ZeroDeltas();
    return yolo->ComputeLoss(truths, net_w, net_h).total;
  };

  // Analytic deltas.
  loss_value(input);
  Tensor analytic = net.layer(0).delta();

  // Probe a sample of coordinates with central differences. Objectness
  // and class channels go through exact BCE-with-logits gradients and
  // must match tightly; box channels use the CIoU-paper convention of
  // holding alpha constant, so their analytic gradient legitimately
  // deviates from the full numeric derivative by up to ~40%.
  const float eps = 2e-3f;
  int checked = 0;
  float max_rel_bce = 0.0f;
  float max_rel_box = 0.0f;
  for (int probe = 0; probe < 80; ++probe) {
    const int64_t idx =
        static_cast<int64_t>(rng.NextU64Below(
            static_cast<uint64_t>(input.size())));
    const float orig = input[idx];
    input[idx] = orig + eps;
    const double lp = loss_value(input);
    input[idx] = orig - eps;
    const double lm = loss_value(input);
    input[idx] = orig;
    const float numeric = static_cast<float>((lp - lm) / (2 * eps));
    const float a = analytic[idx];
    const float abs_err = std::fabs(a - numeric);
    if (abs_err > 5e-3f) {
      const float denom = std::max({std::fabs(a), std::fabs(numeric), 5e-2f});
      const int64_t attr = (idx / (gw * gh)) % (5 + classes);
      if (attr < 4) {
        max_rel_box = std::max(max_rel_box, abs_err / denom);
      } else {
        max_rel_bce = std::max(max_rel_bce, abs_err / denom);
      }
    }
    ++checked;
  }
  EXPECT_EQ(checked, 80);
  EXPECT_LT(max_rel_bce, 0.08f) << "obj/class deltas diverge from numeric";
  EXPECT_LT(max_rel_box, 0.60f) << "box deltas diverge beyond the alpha-"
                                   "constant approximation";
}

}  // namespace
}  // namespace thali
