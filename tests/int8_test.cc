// Tests for the per-channel int8 quantization stack (tensor/gemm_int8,
// the kQuantInt8 conv path, calibration and its persistence): the
// quantizer math, bitwise conformance of the scalar and AVX2 kernel
// families on every conv GEMM shape of yolov4-thali, plan selection,
// the THALI_INT8=0 fp32 pin, and end-to-end accuracy against fp32.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "base/cpu_features.h"
#include "base/file_util.h"
#include "base/rng.h"
#include "base/thread_pool.h"
#include "core/detector.h"
#include "core/trainer.h"
#include "darknet/calibration_io.h"
#include "darknet/cfg.h"
#include "darknet/weights_io.h"
#include "darknet/model_zoo.h"
#include "data/dataset.h"
#include "data/food_classes.h"
#include "nn/conv_layer.h"
#include "nn/exec_plan.h"
#include "nn/network.h"
#include "nn/yolo_layer.h"
#include "tensor/gemm.h"
#include "tensor/gemm_int8.h"
#include "tensor/qtensor.h"

namespace thali {
namespace {

// Restores every global knob a test may flip, so a failure cannot leak
// int8 mode, a forced kernel family, or parallelism into later tests.
class Int8Test : public ::testing::Test {
 protected:
  void TearDown() override {
    SetMaxParallelism(1);
    internal::SetInt8ForTesting(-1);
    internal::SetInt8GemmKernelForTesting(nullptr);
    internal::SetInt8EpilogueForTesting(nullptr);
    internal::SetGemmPackingForTesting(-1);
    internal::SetFusionForTesting(-1);
  }
};

TEST_F(Int8Test, QuantizeWeightsRoundsClampsAndSumsColumns) {
  // Row 0: maxabs 2.54 -> scale 0.02, quantized values land on exact
  // multiples. Row 1: all zeros -> scale 1, all-zero row.
  const float w[2 * 3] = {2.54f, -1.27f, 0.635f, 0.0f, 0.0f, 0.0f};
  const int64_t kp = Int8PackedK(3);
  ASSERT_EQ(kp, 4);
  std::vector<int8_t> qw(static_cast<size_t>(2 * kp), 99);
  float scale[2];
  int32_t colsum[2];
  Int8QuantizeWeights(w, 2, 3, qw.data(), scale, colsum);
  EXPECT_FLOAT_EQ(scale[0], 2.54f / 127.0f);
  EXPECT_EQ(qw[0], 127);
  EXPECT_EQ(qw[1], -64);  // -63.5 rounds to even
  EXPECT_EQ(qw[2], 32);   // 31.75 rounds to 32
  EXPECT_EQ(qw[3], 0);    // kp padding is zero
  EXPECT_EQ(colsum[0], 127 - 64 + 32);
  EXPECT_FLOAT_EQ(scale[1], 1.0f);
  EXPECT_EQ(colsum[1], 0);
  for (int64_t p = 0; p < kp; ++p) EXPECT_EQ(qw[static_cast<size_t>(kp + p)], 0);
}

TEST_F(Int8Test, RangeToScaleZpWidensToIncludeZero) {
  float s = 0.0f;
  int32_t zp = -1;
  // All-positive range: lo widens to 0, zp = 0.
  Int8RangeToScaleZp(0.5f, 2.54f, &s, &zp);
  EXPECT_FLOAT_EQ(s, 2.54f / 127.0f);
  EXPECT_EQ(zp, 0);
  // All-negative range: hi widens to 0, zp = 127.
  Int8RangeToScaleZp(-2.54f, -0.5f, &s, &zp);
  EXPECT_FLOAT_EQ(s, 2.54f / 127.0f);
  EXPECT_EQ(zp, 127);
  // Symmetric range: zp in the middle.
  Int8RangeToScaleZp(-1.0f, 1.0f, &s, &zp);
  EXPECT_EQ(zp, 64);  // 63.5 rounds to even
  // Degenerate range still yields a positive scale.
  Int8RangeToScaleZp(0.0f, 0.0f, &s, &zp);
  EXPECT_GT(s, 0.0f);
}

TEST_F(Int8Test, QuantizeActivationsClampsTo7Bit) {
  float s = 0.0f;
  int32_t zp = 0;
  Int8RangeToScaleZp(-1.0f, 1.0f, &s, &zp);
  // Values far outside the calibrated range must clamp into [0, 127]:
  // the kernels' no-saturation guarantee depends on the 7-bit bound.
  const float x[5] = {-100.0f, -1.0f, 0.0f, 1.0f, 100.0f};
  uint8_t u[5];
  Int8QuantizeActivations(x, 5, 1.0f / s, zp, u);
  EXPECT_EQ(u[0], 0);
  EXPECT_EQ(u[2], static_cast<uint8_t>(zp));  // x = 0 is exactly zp
  EXPECT_EQ(u[4], 127);
  for (uint8_t v : u) EXPECT_LE(v, 127);
}

TEST_F(Int8Test, PackActColsMatchesDocumentedLayout) {
  const int64_t k = 6, n = 11;  // kp = 8, one full strip + 3 tail cols
  const int64_t kp = Int8PackedK(k);
  std::vector<uint8_t> qcol(static_cast<size_t>(k * n));
  for (int64_t p = 0; p < k; ++p) {
    for (int64_t j = 0; j < n; ++j) {
      qcol[static_cast<size_t>(p * n + j)] =
          static_cast<uint8_t>(p * 13 + j + 1);
    }
  }
  std::vector<uint8_t> packed(static_cast<size_t>(Int8PackedActBytes(k, n)),
                              0xAA);
  Int8PackActCols(qcol.data(), k, n, packed.data());
  // Strip bytes: (p, j) at (p/4)*32 + (j%8)*4 + p%4.
  for (int64_t p = 0; p < kp; ++p) {
    for (int64_t j = 0; j < 8; ++j) {
      const uint8_t want =
          p < k ? qcol[static_cast<size_t>(p * n + j)] : 0;
      EXPECT_EQ(packed[static_cast<size_t>((p / 4) * 32 + j * 4 + p % 4)],
                want)
          << "p=" << p << " j=" << j;
    }
  }
  // Tail columns: flat k-contiguous kp bytes each.
  const uint8_t* tails = packed.data() + kp * 8;
  for (int64_t t = 0; t < 3; ++t) {
    for (int64_t p = 0; p < kp; ++p) {
      const uint8_t want =
          p < k ? qcol[static_cast<size_t>(p * n + 8 + t)] : 0;
      EXPECT_EQ(tails[t * kp + p], want) << "t=" << t << " p=" << p;
    }
  }
}

// The distinct conv GEMM shapes (m = filters, n = out_h*out_w,
// k = c*ks*ks) of the yolov4-thali model, enumerated from the real
// network so the sweep tracks cfg changes.
std::vector<std::array<int64_t, 3>> ThaliConvGemmShapes() {
  Rng rng(1);
  auto built = BuildNetworkFromCfg(YoloThaliCfg(YoloThaliOptions{}),
                                   /*batch_override=*/1, rng,
                                   ExecMode::kInference);
  THALI_CHECK_OK(built.status());
  std::set<std::array<int64_t, 3>> seen;
  for (int i = 0; i < built->net->num_layers(); ++i) {
    const Layer& l = built->net->layer(i);
    if (std::string_view(l.kind()) != "convolutional") continue;
    const auto& conv = static_cast<const ConvLayer&>(l);
    const int64_t m = conv.options().filters;
    const int64_t k = l.input_shape().dim(1) * conv.options().ksize *
                      conv.options().ksize;
    const int64_t n = l.output_shape().dim(2) * l.output_shape().dim(3);
    seen.insert({m, n, k});
  }
  return {seen.begin(), seen.end()};
}

// Random quantized operands for one GEMM shape, valid per the scheme:
// weights in [-127, 127], activations 7-bit [0, 127].
struct QuantOperands {
  std::vector<int8_t> qw;       // m x kp
  std::vector<uint8_t> packed;  // kp x n panel
  std::vector<float> wscale;
  std::vector<int32_t> wcolsum;
};

QuantOperands MakeOperands(int64_t m, int64_t n, int64_t k, uint64_t seed) {
  Rng rng(seed);
  const int64_t kp = Int8PackedK(k);
  QuantOperands ops;
  ops.qw.resize(static_cast<size_t>(m * kp), 0);
  ops.wscale.resize(static_cast<size_t>(m));
  ops.wcolsum.resize(static_cast<size_t>(m));
  for (int64_t f = 0; f < m; ++f) {
    int32_t sum = 0;
    for (int64_t p = 0; p < k; ++p) {
      const int v = rng.NextInt(-127, 127);
      ops.qw[static_cast<size_t>(f * kp + p)] = static_cast<int8_t>(v);
      sum += v;
    }
    ops.wscale[static_cast<size_t>(f)] = 0.01f + 0.001f * static_cast<float>(f % 7);
    ops.wcolsum[static_cast<size_t>(f)] = sum;
  }
  std::vector<uint8_t> qcol(static_cast<size_t>(k * n));
  for (auto& v : qcol) v = static_cast<uint8_t>(rng.NextInt(0, 127));
  ops.packed.resize(static_cast<size_t>(Int8PackedActBytes(k, n)));
  Int8PackActCols(qcol.data(), k, n, ops.packed.data());
  return ops;
}

TEST_F(Int8Test, ScalarAndAvx2AccumulateBitwiseIdenticalOnAllThaliShapes) {
  const Int8GemmKernel* avx2 = Avx2Int8GemmKernel();
  if (avx2 == nullptr || !CpuInfo().avx2) {
    GTEST_SKIP() << "no AVX2 on this host";
  }
  const auto shapes = ThaliConvGemmShapes();
  // yolov4-thali spans 22 distinct conv geometries; the sweep must not
  // silently shrink if the cfg generator changes.
  ASSERT_EQ(shapes.size(), 22u);
  uint64_t seed = 7;
  for (const auto& [m, n, k] : shapes) {
    const int64_t kp = Int8PackedK(k);
    const QuantOperands ops = MakeOperands(m, n, k, seed++);
    std::vector<int32_t> acc_s(static_cast<size_t>(m * n), -1);
    std::vector<int32_t> acc_v(static_cast<size_t>(m * n), -2);
    ScalarInt8GemmKernel().accumulate(0, m, n, kp, ops.qw.data(),
                                      ops.packed.data(), acc_s.data(), n);
    avx2->accumulate(0, m, n, kp, ops.qw.data(), ops.packed.data(),
                     acc_v.data(), n);
    EXPECT_EQ(std::memcmp(acc_s.data(), acc_v.data(),
                          acc_s.size() * sizeof(int32_t)),
              0)
        << "m=" << m << " n=" << n << " k=" << k;
  }
}

TEST_F(Int8Test, KernelFamiliesAgreeOnRegisterTileEdges) {
  const Int8GemmKernel* avx2 = Avx2Int8GemmKernel();
  if (avx2 == nullptr || !CpuInfo().avx2) {
    GTEST_SKIP() << "no AVX2 on this host";
  }
  // Every (m % 6, n % 8, k % 4) residue class around the kernel's 6x8
  // register tile and the k-quad interleave.
  uint64_t seed = 99;
  for (int64_t m = 1; m <= 13; ++m) {
    for (int64_t n = 1; n <= 17; ++n) {
      for (const int64_t k : {1, 3, 4, 5, 32, 33}) {
        const int64_t kp = Int8PackedK(k);
        const QuantOperands ops = MakeOperands(m, n, k, seed++);
        std::vector<int32_t> acc_s(static_cast<size_t>(m * n), 0);
        std::vector<int32_t> acc_v(static_cast<size_t>(m * n), 1);
        ScalarInt8GemmKernel().accumulate(0, m, n, kp, ops.qw.data(),
                                          ops.packed.data(), acc_s.data(), n);
        avx2->accumulate(0, m, n, kp, ops.qw.data(), ops.packed.data(),
                         acc_v.data(), n);
        ASSERT_EQ(std::memcmp(acc_s.data(), acc_v.data(),
                              acc_s.size() * sizeof(int32_t)),
                  0)
            << "m=" << m << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST_F(Int8Test, Int8GemmBitwiseIdenticalAcrossThreadsAndKernels) {
  // Big enough that the driver's row parallelism actually splits.
  const int64_t m = 128, n = 576, k = 1152;
  const QuantOperands ops = MakeOperands(m, n, k, 5);
  std::vector<float> bias(static_cast<size_t>(m));
  for (int64_t f = 0; f < m; ++f) {
    bias[static_cast<size_t>(f)] = 0.05f * static_cast<float>(f % 11) - 0.2f;
  }
  Int8Epilogue epi;
  epi.in_scale = 0.03f;
  epi.in_zp = 41;
  epi.wscale = ops.wscale.data();
  epi.wcolsum = ops.wcolsum.data();
  epi.bias = bias.data();
  epi.activation = GemmActivation::kLeaky;

  auto run = [&](const char* kernel, int threads) {
    internal::SetInt8GemmKernelForTesting(kernel);
    SetMaxParallelism(threads);
    std::vector<float> c(static_cast<size_t>(m * n), -9.0f);
    std::vector<int32_t> acc(static_cast<size_t>(m * n));
    Int8GemmPrepacked(m, n, k, ops.qw.data(), ops.packed.data(), epi,
                      c.data(), n, acc.data());
    internal::SetInt8GemmKernelForTesting(nullptr);
    return c;
  };
  const std::vector<float> base = run("scalar", 1);
  for (const char* kernel : {"scalar", "avx2"}) {
    for (const int threads : {1, 2, 4}) {
      if (std::string_view(kernel) == "scalar" && threads == 1) continue;
      const std::vector<float> got = run(kernel, threads);
      EXPECT_EQ(
          std::memcmp(got.data(), base.data(), got.size() * sizeof(float)), 0)
          << "kernel=" << kernel << " threads=" << threads;
    }
  }
}

TEST_F(Int8Test, EpilogueFamiliesAgreeBitwiseIncludingMaskedTails) {
  if (Avx2Int8EpilogueOrNull() == nullptr || !CpuInfo().avx2) {
    GTEST_SKIP() << "no AVX2 epilogue on this host";
  }
  Rng rng(909);
  const int64_t m = 9;
  std::vector<float> wscale(static_cast<size_t>(m));
  std::vector<int32_t> wcolsum(static_cast<size_t>(m));
  std::vector<float> bias(static_cast<size_t>(m));
  for (int64_t f = 0; f < m; ++f) {
    wscale[static_cast<size_t>(f)] = 0.001f + 0.01f * static_cast<float>(f);
    wcolsum[static_cast<size_t>(f)] = rng.NextInt(-4000, 4000);
    bias[static_cast<size_t>(f)] = 0.3f * static_cast<float>(f - 4);
  }
  // Every tail width 0..7 and every activation, with accumulators that
  // land on both sides of zero so the leaky/relu blends are exercised.
  for (const int64_t n : {8, 9, 10, 11, 12, 13, 14, 15, 33}) {
    std::vector<int32_t> acc(static_cast<size_t>(m * n));
    for (auto& a : acc) a = rng.NextInt(-300000, 300000);
    for (const GemmActivation act :
         {GemmActivation::kNone, GemmActivation::kLeaky,
          GemmActivation::kRelu}) {
      Int8Epilogue epi;
      epi.in_scale = 0.024f;
      epi.in_zp = 37;
      epi.wscale = wscale.data();
      epi.wcolsum = wcolsum.data();
      epi.bias = bias.data();
      epi.activation = act;
      std::vector<float> c_s(static_cast<size_t>(m * n), -1.0f);
      std::vector<float> c_v(static_cast<size_t>(m * n), -2.0f);
      internal::SetInt8EpilogueForTesting("scalar");
      Int8ApplyEpilogue(epi, 0, m, n, acc.data(), n, c_s.data(), n);
      internal::SetInt8EpilogueForTesting("avx2");
      Int8ApplyEpilogue(epi, 0, m, n, acc.data(), n, c_v.data(), n);
      internal::SetInt8EpilogueForTesting(nullptr);
      ASSERT_EQ(
          std::memcmp(c_s.data(), c_v.data(), c_s.size() * sizeof(float)), 0)
          << "n=" << n << " act=" << static_cast<int>(act);
    }
  }
}

TEST_F(Int8Test, EnvValueSemanticsAreOptIn) {
  EXPECT_FALSE(internal::Int8EnvValueEnables(nullptr));
  EXPECT_FALSE(internal::Int8EnvValueEnables(""));
  EXPECT_FALSE(internal::Int8EnvValueEnables("0"));
  EXPECT_TRUE(internal::Int8EnvValueEnables("1"));
  EXPECT_TRUE(internal::Int8EnvValueEnables("yes"));
}

BuiltNetwork BuildThali(int int8_mode) {
  internal::SetInt8ForTesting(int8_mode);
  Rng rng(4242);
  auto built = BuildNetworkFromCfg(YoloThaliCfg(YoloThaliOptions{}),
                                   /*batch_override=*/1, rng,
                                   ExecMode::kInference);
  internal::SetInt8ForTesting(-1);
  THALI_CHECK_OK(built.status());
  return std::move(built).value();
}

TEST_F(Int8Test, PlanSelectsInt8OnlyForEligibleUnpinnedConvs) {
  BuiltNetwork built = BuildThali(1);
  const Network& net = *built.net;
  ASSERT_TRUE(net.int8_enabled());
  ASSERT_TRUE(net.exec_plan().fused);
  int quantized_3x3 = 0, quantized_1x1 = 0, quantized_s2 = 0, head_feeders = 0;
  for (int i = 0; i < net.num_layers(); ++i) {
    if (std::string_view(net.layer(i).kind()) != "convolutional") continue;
    const auto& conv = static_cast<const ConvLayer&>(net.layer(i));
    const ConvLayer::Options& o = conv.options();
    const LayerPlan& lp = net.exec_plan().layers[static_cast<size_t>(i)];
    if (o.ksize == 3 && o.stride == 1 && o.pad == 1) {
      // Winograd geometry: int8 unless the output is NCHW-pinned, which
      // must stay fp32 Winograd (in yolov4-thali no 3x3 conv is pinned,
      // so every one quantizes).
      if (lp.out_layout == ActLayout::kCNHW) {
        EXPECT_EQ(lp.conv_algo, ConvAlgo::kQuantInt8) << "layer " << i;
        ++quantized_3x3;
      } else {
        EXPECT_EQ(lp.conv_algo, ConvAlgo::kWinograd) << "layer " << i;
      }
    } else if (o.ksize == 1 && o.stride == 1 && o.pad == 0) {
      // Every 1x1 quantizes, layout pins included — the int8 GEMM reads
      // through strides like kDirect1x1, so even the NCHW-pinned head
      // feeders take the quantized algorithm (their fp32 output is the
      // dequant edge into the yolo heads).
      EXPECT_EQ(lp.conv_algo, ConvAlgo::kQuantInt8Direct1x1) << "layer " << i;
      ++quantized_1x1;
      if (lp.out_layout == ActLayout::kNCHW) ++head_feeders;
    } else if (o.ksize == 3 && o.stride == 2 && o.pad == 1) {
      // Downsampling stem convs: the u8 im2col walks any stride, so
      // these quantize too (they demote to plain im2col — no Winograd
      // form at stride 2 — when int8 is inactive at runtime).
      EXPECT_EQ(lp.conv_algo, ConvAlgo::kQuantInt8) << "layer " << i;
      ++quantized_s2;
    } else {
      EXPECT_NE(lp.conv_algo, ConvAlgo::kQuantInt8) << "layer " << i;
      EXPECT_NE(lp.conv_algo, ConvAlgo::kQuantInt8Direct1x1) << "layer " << i;
    }
  }
  EXPECT_EQ(quantized_3x3, 13);  // every 3x3/s1/p1 conv of the model
  EXPECT_EQ(quantized_1x1, 10);  // every 1x1 conv, head feeders included
  EXPECT_EQ(quantized_s2, 2);    // the stride-2 stem convs 0-1
  EXPECT_EQ(head_feeders, 3);    // one per detection head

  // Before calibration no dtype chain exists: every edge is fp32.
  EXPECT_EQ(net.exec_plan().chained_edges, 0);
  EXPECT_FALSE(net.exec_plan().input_u8);
  for (const LayerPlan& lp : net.exec_plan().layers) {
    EXPECT_EQ(lp.out_dtype, DType::kF32);
    EXPECT_EQ(lp.in_dtype, DType::kF32);
  }

  // Int8 off: the plan must contain no quantized entry at all.
  BuiltNetwork off = BuildThali(0);
  EXPECT_FALSE(off.net->int8_enabled());
  for (const LayerPlan& lp : off.net->exec_plan().layers) {
    EXPECT_NE(lp.conv_algo, ConvAlgo::kQuantInt8);
    EXPECT_NE(lp.conv_algo, ConvAlgo::kQuantInt8Direct1x1);
  }
}

// Full thali forward on fixed input; heads flattened for comparison.
std::vector<float> HeadOutputs(BuiltNetwork& built) {
  Tensor input(built.net->input_shape());
  Rng irng(17);
  for (int64_t i = 0; i < input.size(); ++i) input[i] = irng.NextGaussian();
  built.net->Forward(input, /*train=*/false);
  std::vector<float> flat;
  for (YoloLayer* head : built.yolo_layers) {
    const Tensor& out = head->output();
    flat.insert(flat.end(), out.data(), out.data() + out.size());
  }
  return flat;
}

TEST_F(Int8Test, Int8OffIsBitwiseIdenticalToDefaultFusedPlan) {
  // THALI_INT8=0 (and unset) must reproduce the fp32 fused plan byte for
  // byte — quantization support may cost default users nothing.
  BuiltNetwork def = BuildThali(-1);
  BuiltNetwork off = BuildThali(0);
  const std::vector<float> a = HeadOutputs(def);
  const std::vector<float> b = HeadOutputs(off);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

// Folds batch norm on every conv and calibrates the int8 layers of an
// armed-plan network with one min/max pass over `input`, then replans
// so quantize-once chains take effect. Returns the number of convs
// armed.
int FoldAndCalibrate(Network& net, const Tensor& input) {
  for (int i = 0; i < net.num_layers(); ++i) {
    if (std::string_view(net.layer(i).kind()) == "convolutional") {
      static_cast<ConvLayer&>(net.layer(i)).FoldBatchNorm();
    }
  }
  net.set_calib_phase(CalibPhase::kRange);
  Tensor in = input;
  net.Forward(in, /*train=*/false);
  net.set_calib_phase(CalibPhase::kOff);
  int armed = 0;
  for (int i = 0; i < net.num_layers(); ++i) {
    Layer& l = net.layer(i);
    if (std::string_view(l.kind()) != "convolutional") continue;
    if (l.plan().conv_algo != ConvAlgo::kQuantInt8 &&
        l.plan().conv_algo != ConvAlgo::kQuantInt8Direct1x1) {
      continue;
    }
    auto& conv = static_cast<ConvLayer&>(l);
    conv.FinalizeCalibration(100.0);
    if (conv.has_activation_range()) ++armed;
  }
  THALI_CHECK_OK(net.ReplanInference());
  return armed;
}

TEST_F(Int8Test, Int8ForwardRunsQuantizedAndTracksFp32) {
  // fp32 oracle: same seed, same folded weights, int8 off.
  BuiltNetwork fp32 = BuildThali(0);
  for (int i = 0; i < fp32.net->num_layers(); ++i) {
    if (std::string_view(fp32.net->layer(i).kind()) == "convolutional") {
      static_cast<ConvLayer&>(fp32.net->layer(i)).FoldBatchNorm();
    }
  }
  const std::vector<float> ref = HeadOutputs(fp32);

  BuiltNetwork int8 = BuildThali(1);
  Tensor calib_input(int8.net->input_shape());
  Rng irng(17);  // the same input HeadOutputs forwards
  for (int64_t i = 0; i < calib_input.size(); ++i) {
    calib_input[i] = irng.NextGaussian();
  }
  const int armed = FoldAndCalibrate(*int8.net, calib_input);
  ASSERT_GT(armed, 0);
  const std::vector<float> got = HeadOutputs(int8);
  ASSERT_EQ(got.size(), ref.size());

  // The quantized path must have actually run (outputs differ from
  // fp32)...
  EXPECT_NE(std::memcmp(got.data(), ref.data(), got.size() * sizeof(float)),
            0);
  // ...while staying close: relative L2 over the head activations.
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < ref.size(); ++i) {
    const double d = static_cast<double>(got[i]) - ref[i];
    num += d * d;
    den += static_cast<double>(ref[i]) * ref[i];
  }
  ASSERT_GT(den, 0.0);
  EXPECT_LT(std::sqrt(num / den), 0.15)
      << "int8 heads drifted " << std::sqrt(num / den) << " rel-L2 from fp32";

  // Scalar and AVX2 kernel families must agree bitwise end to end.
  internal::SetInt8GemmKernelForTesting("scalar");
  const std::vector<float> scalar_out = HeadOutputs(int8);
  internal::SetInt8GemmKernelForTesting(nullptr);
  EXPECT_EQ(std::memcmp(scalar_out.data(), got.data(),
                        got.size() * sizeof(float)),
            0);
}

TEST_F(Int8Test, ReplanAfterCalibrationChainsMajorityOfThali) {
  BuiltNetwork int8 = BuildThali(1);
  Tensor input(int8.net->input_shape());
  Rng irng(41);
  for (int64_t i = 0; i < input.size(); ++i) input[i] = irng.NextGaussian();
  ASSERT_GT(FoldAndCalibrate(*int8.net, input), 0);

  const ExecPlan& plan = int8.net->exec_plan();
  // The tentpole acceptance floor: with the stride-2 stem convs
  // quantized and the network input chained as a u8 domain, 49 of the
  // 52 thali layers run quantized (25 quantized convs plus the u8
  // passthroughs between them; only the three yolo heads stay fp32),
  // with real chained edges and the head feeders' outputs as dequant
  // edges.
  EXPECT_GE(plan.quantized_layers, 49) << "of " << int8.net->num_layers();
  EXPECT_GT(plan.chained_edges, 0);
  EXPECT_GE(plan.dequant_edges, 3);  // one per yolo head at minimum
  // The input itself quantizes: layer 0 reads u8 bytes staged by
  // Network::Forward (or the detector's fused letterbox-quantize) in
  // conv 0's calibrated activation domain.
  EXPECT_TRUE(plan.input_u8);
  EXPECT_GT(plan.input_qscale, 0.0f);
  EXPECT_GE(plan.input_qzp, 0);
  EXPECT_LE(plan.input_qzp, 127);
  EXPECT_EQ(plan.layers[0].in_dtype, DType::kU8);
  EXPECT_EQ(plan.layers[0].in_qscale, plan.input_qscale);
  EXPECT_EQ(plan.layers[0].in_qzp, plan.input_qzp);
  int chained_convs = 0;
  for (int i = 0; i < int8.net->num_layers(); ++i) {
    const LayerPlan& lp = plan.layers[static_cast<size_t>(i)];
    if (lp.in_dtype == DType::kU8) {
      // A u8 input implies a u8 producer in the same domain.
      const bool conv = std::string_view(int8.net->layer(i).kind()) ==
                        "convolutional";
      if (conv) ++chained_convs;
      EXPECT_GT(lp.in_qscale, 0.0f) << "layer " << i;
      EXPECT_GE(lp.in_qzp, 0) << "layer " << i;
      EXPECT_LE(lp.in_qzp, 127) << "layer " << i;
    }
    if (lp.out_dtype == DType::kU8) {
      EXPECT_GE(lp.quant_root, 0) << "layer " << i;
      EXPECT_EQ(plan.layers[static_cast<size_t>(lp.quant_root)].out_dtype,
                DType::kU8)
          << "layer " << i;
    }
  }
  EXPECT_GT(chained_convs, 0);

  // Dropping the ranges must drop every chain again.
  for (int i = 0; i < int8.net->num_layers(); ++i) {
    if (std::string_view(int8.net->layer(i).kind()) != "convolutional") {
      continue;
    }
    static_cast<ConvLayer&>(int8.net->layer(i)).ResetCalibration();
  }
  THALI_CHECK_OK(int8.net->ReplanInference());
  EXPECT_EQ(int8.net->exec_plan().chained_edges, 0);
  for (const LayerPlan& lp : int8.net->exec_plan().layers) {
    EXPECT_EQ(lp.out_dtype, DType::kF32);
  }
  // And the fp32 fallbacks still forward cleanly.
  const std::vector<float> out = HeadOutputs(int8);
  EXPECT_FALSE(out.empty());
}

TEST_F(Int8Test, U8OutEpilogueFamiliesAgreeBitwiseIncludingMish) {
  if (Avx2Int8EpilogueOrNull() == nullptr || !CpuInfo().avx2) {
    GTEST_SKIP() << "no AVX2 epilogue on this host";
  }
  Rng rng(808);
  const int64_t m = 7;
  std::vector<float> wscale(static_cast<size_t>(m));
  std::vector<int32_t> wcolsum(static_cast<size_t>(m));
  std::vector<float> bias(static_cast<size_t>(m));
  for (int64_t f = 0; f < m; ++f) {
    wscale[static_cast<size_t>(f)] = 0.002f + 0.008f * static_cast<float>(f);
    wcolsum[static_cast<size_t>(f)] = rng.NextInt(-4000, 4000);
    bias[static_cast<size_t>(f)] = 0.25f * static_cast<float>(f - 3);
  }
  // Every tail width and all four fusable activations, requantizing to
  // u8 in an output domain with a nonzero zero point. The mish case
  // pins the scalar FastMish against the AVX2 FastMishVec bit for bit.
  for (const int64_t n : {8, 9, 10, 11, 12, 13, 14, 15, 40}) {
    std::vector<int32_t> acc(static_cast<size_t>(m * n));
    for (auto& a : acc) a = rng.NextInt(-300000, 300000);
    for (const GemmActivation act :
         {GemmActivation::kNone, GemmActivation::kLeaky,
          GemmActivation::kRelu, GemmActivation::kMish}) {
      Int8Epilogue epi;
      epi.in_scale = 0.019f;
      epi.in_zp = 52;
      epi.wscale = wscale.data();
      epi.wcolsum = wcolsum.data();
      epi.bias = bias.data();
      epi.activation = act;
      epi.out_inv_scale = 1.0f / 0.05f;
      epi.out_zp = 33;
      std::vector<uint8_t> u_s(static_cast<size_t>(m * n), 0xAA);
      std::vector<uint8_t> u_v(static_cast<size_t>(m * n), 0x55);
      internal::SetInt8EpilogueForTesting("scalar");
      epi.out_u8 = u_s.data();
      Int8ApplyEpilogue(epi, 0, m, n, acc.data(), n, nullptr, n);
      internal::SetInt8EpilogueForTesting("avx2");
      epi.out_u8 = u_v.data();
      Int8ApplyEpilogue(epi, 0, m, n, acc.data(), n, nullptr, n);
      internal::SetInt8EpilogueForTesting(nullptr);
      ASSERT_EQ(std::memcmp(u_s.data(), u_v.data(), u_s.size()), 0)
          << "n=" << n << " act=" << static_cast<int>(act);
      for (uint8_t v : u_s) ASSERT_LE(v, 127);
    }
  }
}

TEST_F(Int8Test, CalibrationSurvivesRebatchAndMatchesBatchOne) {
  BuiltNetwork int8 = BuildThali(1);
  Tensor input(int8.net->input_shape());
  Rng irng(23);
  for (int64_t i = 0; i < input.size(); ++i) input[i] = irng.NextGaussian();
  ASSERT_GT(FoldAndCalibrate(*int8.net, input), 0);

  const std::vector<float> base = HeadOutputs(int8);

  // Batch 4 of identical items: every item must reproduce the batch-1
  // heads bitwise (per-item quantization, no cross-item interaction).
  THALI_CHECK_OK(int8.net->SetBatch(4));
  Tensor batched(int8.net->input_shape());
  const int64_t item = input.size();
  for (int64_t b = 0; b < 4; ++b) {
    std::memcpy(batched.data() + b * item, input.data(),
                static_cast<size_t>(item) * sizeof(float));
  }
  int8.net->Forward(batched, /*train=*/false);
  for (YoloLayer* head : int8.yolo_layers) {
    const Tensor& out = head->output();
    const int64_t per = out.size() / 4;
    for (int64_t b = 1; b < 4; ++b) {
      ASSERT_EQ(std::memcmp(out.data(), out.data() + b * per,
                            static_cast<size_t>(per) * sizeof(float)),
                0)
          << "batch item " << b;
    }
  }

  // ...and back to batch 1: bitwise identical to the first run.
  THALI_CHECK_OK(int8.net->SetBatch(1));
  const std::vector<float> again = HeadOutputs(int8);
  ASSERT_EQ(again.size(), base.size());
  EXPECT_EQ(
      std::memcmp(again.data(), base.data(), base.size() * sizeof(float)), 0);
}

TEST_F(Int8Test, CalibrationRoundTripsThroughFile) {
  BuiltNetwork a = BuildThali(1);
  Tensor input(a.net->input_shape());
  Rng irng(31);
  for (int64_t i = 0; i < input.size(); ++i) input[i] = irng.NextGaussian();
  const int armed = FoldAndCalibrate(*a.net, input);
  ASSERT_GT(armed, 0);

  const std::string path = ::testing::TempDir() + "thali_int8_test.cal";
  THALI_CHECK_OK(SaveCalibration(*a.net, path));

  BuiltNetwork b = BuildThali(1);
  auto loaded = LoadCalibration(*b.net, path);
  THALI_CHECK_OK(loaded.status());
  EXPECT_EQ(*loaded, armed);
  for (int i = 0; i < a.net->num_layers(); ++i) {
    if (std::string_view(a.net->layer(i).kind()) != "convolutional") continue;
    const auto& ca = static_cast<const ConvLayer&>(a.net->layer(i));
    const auto& cb = static_cast<const ConvLayer&>(b.net->layer(i));
    ASSERT_EQ(ca.has_activation_range(), cb.has_activation_range()) << i;
    if (!ca.has_activation_range()) continue;
    EXPECT_EQ(ca.activation_range_min(), cb.activation_range_min()) << i;
    EXPECT_EQ(ca.activation_range_max(), cb.activation_range_max()) << i;
  }

  // A truncated file must fail loudly, not half-arm the network.
  const std::string bad = ::testing::TempDir() + "thali_int8_test_bad.cal";
  THALI_CHECK_OK(WriteStringToFile(bad, "THALICAL\x01"));
  BuiltNetwork c = BuildThali(1);
  EXPECT_FALSE(LoadCalibration(*c.net, bad).ok());
}

TEST_F(Int8Test, CalibrateInt8KeepsMapWithinOnePointOfFp32) {
  // Short transfer-training run, then the trained checkpoint evaluated
  // through the fp32 and the calibrated int8 inference stacks: the
  // acceptance bar is |mAP(int8) - mAP(fp32)| <= 1.0 point.
  SetMaxParallelism(4);
  DatasetSpec spec;
  spec.num_images = 16;
  spec.seed = 321;
  FoodDataset ds = FoodDataset::Generate(IndianFood10(), spec);

  YoloThaliOptions yo;
  yo.classes = 10;
  yo.batch = 2;
  yo.max_batches = 12;
  yo.burn_in = 3;
  TransferTrainer::Options topts;
  topts.cfg_text = YoloThaliCfg(yo);
  topts.log_every = 0;
  auto trainer = TransferTrainer::Create(topts);
  THALI_CHECK_OK(trainer.status());
  THALI_CHECK_OK(trainer->Train(ds, /*iterations=*/12));
  const std::string wpath = ::testing::TempDir() + "thali_int8_map.weights";
  THALI_CHECK_OK(trainer->SaveWeightsTo(wpath));

  auto build_eval = [&](int int8_mode) {
    internal::SetInt8ForTesting(int8_mode);
    Rng rng(7);
    auto built = BuildNetworkFromCfg(topts.cfg_text, /*batch_override=*/1,
                                     rng, ExecMode::kInference);
    internal::SetInt8ForTesting(-1);
    THALI_CHECK_OK(built.status());
    auto loaded = LoadWeights(*built->net, wpath);
    THALI_CHECK_OK(loaded.status());
    THALI_CHECK_GT(*loaded, 0);
    return std::move(built).value();
  };

  BuiltNetwork fp32 = build_eval(0);
  for (int i = 0; i < fp32.net->num_layers(); ++i) {
    if (std::string_view(fp32.net->layer(i).kind()) == "convolutional") {
      static_cast<ConvLayer&>(fp32.net->layer(i)).FoldBatchNorm();
    }
  }
  std::vector<DetectionHead*> fp32_heads(fp32.yolo_layers.begin(),
                                         fp32.yolo_layers.end());
  const float map_fp32 =
      EvaluateDetections(*fp32.net, fp32_heads, ds, ds.val_indices(), 10,
                         EvalOptions{})
          .map;

  BuiltNetwork int8 = build_eval(1);
  std::vector<DetectionHead*> int8_heads(int8.yolo_layers.begin(),
                                         int8.yolo_layers.end());
  Network& int8_net = *int8.net;
  Detector det(std::move(int8.net), int8_heads);
  Detector::Int8CalibrationOptions copts;
  copts.max_images = static_cast<int>(ds.train_indices().size());
  const int armed = det.CalibrateInt8(
      ds, std::span<const int>(ds.train_indices()), copts);
  ASSERT_GT(armed, 0);
  const float map_int8 =
      EvaluateDetections(int8_net, int8_heads, ds, ds.val_indices(), 10,
                         EvalOptions{})
          .map;

  EXPECT_LE(std::fabs(map_int8 - map_fp32), 0.01f)
      << "fp32 mAP " << map_fp32 << " vs int8 mAP " << map_int8;
}

}  // namespace
}  // namespace thali
