// Tests for the in-process serving subsystem (src/serve): bounded-queue
// backpressure, micro-batch formation (linger vs full batch), deadline
// expiry while queued, drain-on-shutdown, metrics accounting, and bitwise
// identity between served results and direct DetectBatch calls. The
// threaded tests carry the tsan_smoke/serve_smoke labels and run under
// -DTHALI_SANITIZE=thread.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/detector.h"
#include "darknet/model_zoo.h"
#include "darknet/weights_io.h"
#include "data/food_classes.h"
#include "data/renderer.h"
#include "serve/batcher.h"
#include "serve/metrics.h"
#include "serve/queue.h"
#include "serve/server.h"

namespace thali {
namespace serve {
namespace {

using std::chrono::milliseconds;
using std::chrono::microseconds;

constexpr auto kNoDeadline = ServeClock::time_point::max();

Detector MakeDetector(uint64_t seed = 7) {
  auto det = Detector::FromCfg(YoloThaliCfg(YoloThaliOptions{}), seed);
  THALI_CHECK(det.ok()) << det.status().ToString();
  return std::move(det).value();
}

Server::DetectorFactory StandardFactory(uint64_t seed = 7) {
  return [seed]() { return Detector::FromCfg(YoloThaliCfg(YoloThaliOptions{}), seed); };
}

// Renders n platter images at the network input size (96x96), so the
// served path and the direct path see identical tensors (no letterbox).
std::vector<Image> RenderImages(int n, uint64_t seed = 11) {
  PlatterRenderer renderer(IndianFood10(), PlatterRenderer::Options{});
  Rng rng(seed);
  std::vector<Image> images;
  images.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    images.push_back(renderer.RenderRandomPlatter(2 + i % 3, rng).image);
  }
  return images;
}

RequestPtr MakeRequest(Image image,
                       ServeClock::time_point deadline = kNoDeadline) {
  auto req = std::make_unique<Request>();
  req->image = std::move(image);
  req->submit_time = ServeClock::now();
  req->deadline = deadline;
  return req;
}

void ExpectSameDetections(const std::vector<Detection>& a,
                          const std::vector<Detection>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].class_id, b[i].class_id);
    EXPECT_EQ(a[i].confidence, b[i].confidence);  // bitwise, not NEAR
    EXPECT_EQ(a[i].box.x, b[i].box.x);
    EXPECT_EQ(a[i].box.y, b[i].box.y);
    EXPECT_EQ(a[i].box.w, b[i].box.w);
    EXPECT_EQ(a[i].box.h, b[i].box.h);
  }
}

// ---------------------------------------------------------------- queue --

TEST(BoundedQueueTest, FifoOrderAndBackpressure) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1).ok());
  EXPECT_TRUE(q.TryPush(2).ok());
  Status full = q.TryPush(3);
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(q.size(), 2u);

  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.TryPush(3).ok());  // slot freed
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 3);
}

TEST(BoundedQueueTest, CloseDrainsRemainingItemsThenReportsClosed) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.TryPush(10).ok());
  EXPECT_TRUE(q.TryPush(20).ok());
  q.Close();
  EXPECT_EQ(q.TryPush(30).code(), StatusCode::kFailedPrecondition);

  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 10);
  EXPECT_TRUE(q.PopWait(&v, milliseconds(0)));
  EXPECT_EQ(v, 20);
  EXPECT_FALSE(q.Pop(&v));  // closed and drained: no blocking
}

TEST(BoundedQueueTest, CloseUnblocksWaitingConsumers) {
  BoundedQueue<int> q(1);
  std::atomic<int> woke{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&q, &woke] {
      int v;
      EXPECT_FALSE(q.Pop(&v));
      woke.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(milliseconds(10));
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(woke.load(), 3);
}

TEST(BoundedQueueTest, PopWaitTimesOutOnEmptyOpenQueue) {
  BoundedQueue<int> q(1);
  int v = 0;
  EXPECT_FALSE(q.PopWait(&v, milliseconds(5)));
  EXPECT_FALSE(q.closed());
}

// TSan target: Depth() raced against live pushes and pops must only ever
// see values inside [0, capacity] (snapshot semantics, no torn state).
TEST(BoundedQueueTest, DepthStaysWithinCapacityUnderConcurrentTraffic) {
  constexpr int kPerProducer = 400;
  BoundedQueue<int> q(8);
  EXPECT_EQ(q.capacity(), 8u);

  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 2; ++p) {
    threads.emplace_back([&q] {
      for (int i = 0; i < kPerProducer; ++i) {
        while (!q.TryPush(i).ok()) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&q, &popped] {
      int v;
      while (q.Pop(&v)) popped.fetch_add(1);
    });
  }
  // The observer hammers Depth() while both sides run.
  std::thread observer([&q] {
    for (int i = 0; i < 2000; ++i) {
      const size_t d = q.Depth();
      ASSERT_LE(d, q.capacity());
    }
  });
  observer.join();
  threads[0].join();
  threads[1].join();
  q.Close();
  threads[2].join();
  threads[3].join();
  EXPECT_EQ(popped.load(), 2 * kPerProducer);
  EXPECT_EQ(q.Depth(), 0u);
}

// ----------------------------------------------------------- lane queue --

TEST(LaneQueueTest, InteractiveFirstWithBoundedBatchConcession) {
  LaneQueue<int> q(8, 8);
  // 4 batch items queued first, then 4 interactive.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.TryPush(100 + i, Priority::kBatch).ok());
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.TryPush(i, Priority::kInteractive).ok());
  }
  // Strict priority would starve batch; the anti-starvation rule lets the
  // batch lane go first on every 4th pop: I I I B I B B B.
  std::vector<int> order;
  int v;
  while (q.PopWait(&v, milliseconds(0))) order.push_back(v);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 100, 3, 101, 102, 103}));
}

TEST(LaneQueueTest, LaneCapacitiesAreIndependent) {
  LaneQueue<int> q(1, 2);
  EXPECT_EQ(q.Capacity(Priority::kInteractive), 1u);
  EXPECT_EQ(q.Capacity(Priority::kBatch), 2u);
  EXPECT_EQ(q.Capacity(), 3u);

  EXPECT_TRUE(q.TryPush(1, Priority::kInteractive).ok());
  EXPECT_EQ(q.TryPush(2, Priority::kInteractive).code(),
            StatusCode::kResourceExhausted);
  // The full interactive lane does not consume batch slots.
  EXPECT_TRUE(q.TryPush(3, Priority::kBatch).ok());
  EXPECT_TRUE(q.TryPush(4, Priority::kBatch).ok());
  EXPECT_EQ(q.TryPush(5, Priority::kBatch).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(q.Depth(Priority::kInteractive), 1u);
  EXPECT_EQ(q.Depth(Priority::kBatch), 2u);
  EXPECT_EQ(q.Depth(), 3u);
}

TEST(LaneQueueTest, CloseDrainsBothLanesThenReportsClosed) {
  LaneQueue<int> q(4);
  EXPECT_TRUE(q.TryPush(1, Priority::kInteractive).ok());
  EXPECT_TRUE(q.TryPush(2, Priority::kBatch).ok());
  q.Close();
  EXPECT_EQ(q.TryPush(3).code(), StatusCode::kFailedPrecondition);

  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.Pop(&v));  // closed and drained: no blocking
}

TEST(LaneQueueTest, CloseUnblocksWaitingConsumers) {
  LaneQueue<int> q(1);
  std::atomic<int> woke{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&q, &woke] {
      int v;
      EXPECT_FALSE(q.Pop(&v));
      woke.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(milliseconds(10));
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(woke.load(), 3);
}

// ------------------------------------------------------------ histogram --

TEST(LatencyHistogramTest, PercentilesTrackExactWithinBucketResolution) {
  LatencyHistogram hist;
  std::vector<double> samples;
  double v = 0.05;
  for (int i = 0; i < 100; ++i) {
    samples.push_back(v);
    hist.Record(v);
    v *= 1.07;
  }
  EXPECT_EQ(hist.count(), 100);
  // Bucket bounds are a factor of 1.5 apart and adjacent samples a factor
  // of 1.07, so the histogram estimate can drift from the exact
  // rank-interpolated percentile by at most ~1.62x.
  for (double p : {50.0, 95.0, 99.0}) {
    const double exact = bench::Percentile(samples, p);
    const double est = hist.PercentileMs(p);
    EXPECT_LE(est, exact * 1.75) << "p" << p;
    EXPECT_GE(est, exact / 1.75) << "p" << p;
  }
  const double exact_mean =
      bench::Summarize(samples).mean_ms;
  EXPECT_NEAR(hist.MeanMs(), exact_mean, exact_mean * 0.01 + 0.002);

  hist.Reset();
  EXPECT_EQ(hist.count(), 0);
  EXPECT_EQ(hist.PercentileMs(99), 0.0);
}

TEST(LatencyHistogramTest, OverflowSamplesLandInLastBucket) {
  LatencyHistogram hist;
  hist.Record(1e9);  // way past the last bound
  EXPECT_EQ(hist.count(), 1);
  EXPECT_GE(hist.PercentileMs(50),
            LatencyHistogram::BucketUpperMs(LatencyHistogram::kNumBuckets - 1));
}

TEST(ServerMetricsTest, TableContainsCountersAndStages) {
  ServerMetrics m;
  m.submitted.store(5);
  m.completed.store(3);
  m.rejected.store(1);
  m.timed_out.store(1);
  m.batches.store(2);
  m.batched_images.store(3);
  m.e2e_ms.Record(1.0);
  const std::string table = m.ToString();
  EXPECT_NE(table.find("submitted"), std::string::npos);
  EXPECT_NE(table.find("queue wait"), std::string::npos);
  EXPECT_NE(table.find("end to end"), std::string::npos);
  EXPECT_NE(table.find("1.50"), std::string::npos);  // avg batch 3/2
}

TEST(ServerMetricsTest, SnapshotExportsCountersWithoutTableParsing) {
  ServerMetrics m;
  m.submitted.store(7);
  m.completed.store(4);
  m.rejected.store(2);
  m.timed_out.store(1);
  m.shed_pressure.store(2);
  m.weight_reloads.store(3);
  m.batches.store(2);
  m.batched_images.store(4);
  for (int i = 0; i < 100; ++i) m.queue_wait_ms.Record(2.0);
  m.ForClass(Priority::kInteractive).submitted.store(5);
  m.ForClass(Priority::kInteractive).completed_e2e_ms.Record(4.0);
  m.ForClass(Priority::kBatch).shed.store(2);

  const MetricsSnapshot s = m.Snapshot();
  EXPECT_EQ(s.submitted, 7);
  EXPECT_EQ(s.completed, 4);
  EXPECT_EQ(s.rejected, 2);
  EXPECT_EQ(s.timed_out, 1);
  EXPECT_EQ(s.shed_pressure, 2);
  EXPECT_EQ(s.shed_deadline, 0);
  EXPECT_EQ(s.weight_reloads, 3);
  EXPECT_DOUBLE_EQ(s.mean_batch, 2.0);
  EXPECT_EQ(s.queue_wait.count, 100);
  // Every p2.0 sample lands in one bucket; the interpolated percentiles
  // stay within that bucket's bounds.
  EXPECT_GT(s.queue_wait.p95_ms, 0.0);
  EXPECT_EQ(s.interactive.submitted, 5);
  EXPECT_EQ(s.interactive.completed_e2e.count, 1);
  EXPECT_EQ(s.batch.shed, 2);

  const std::string json = s.ToJson();
  for (const char* key :
       {"\"submitted\"", "\"shed_pressure\"", "\"queue_wait\"", "\"p99_ms\"",
        "\"interactive\"", "\"batch\"", "\"weight_reloads\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

// -------------------------------------------------------------- batcher --

TEST(BatcherTest, FullBatchFormsWithoutWaitingForLinger) {
  RequestQueue queue(16);
  ServerMetrics metrics;
  // A long linger that would dominate the test if the batcher waited for
  // it despite having a full batch available.
  Batcher batcher(&queue, Batcher::Options{4, microseconds(10'000'000)},
                  &metrics);
  std::vector<Image> images = RenderImages(6);
  for (Image& img : images) {
    THALI_CHECK_OK(queue.TryPush(MakeRequest(std::move(img))));
  }
  std::vector<RequestPtr> batch;
  // Six immediately-available requests: the first batch caps at
  // max_batch_size without ever waiting (the 10s linger would hang the
  // test if the batcher lingered despite a full batch).
  ASSERT_TRUE(batcher.NextBatch(&batch));
  EXPECT_EQ(batch.size(), 4u);
  // Closing the queue skips the linger for the underfull leftovers.
  queue.Close();
  ASSERT_TRUE(batcher.NextBatch(&batch));
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(metrics.batches.load(), 2);
  EXPECT_EQ(metrics.batched_images.load(), 6);
}

TEST(BatcherTest, LingerFlushesPartialBatch) {
  RequestQueue queue(16);
  ServerMetrics metrics;
  Batcher batcher(&queue, Batcher::Options{8, microseconds(5000)}, &metrics);
  THALI_CHECK_OK(queue.TryPush(MakeRequest(RenderImages(1)[0])));
  std::vector<RequestPtr> batch;
  ASSERT_TRUE(batcher.NextBatch(&batch));  // returns after ~5ms linger
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(metrics.queue_wait_ms.count(), 1);
}

TEST(BatcherTest, ExpiredRequestsCompleteWithoutOccupyingBatchSlots) {
  RequestQueue queue(16);
  ServerMetrics metrics;
  Batcher batcher(&queue, Batcher::Options{4, microseconds(1000)}, &metrics);

  std::vector<Image> images = RenderImages(3);
  const ServeClock::time_point past = ServeClock::now() - milliseconds(1);
  auto expired1 = MakeRequest(images[0], past);
  auto expired2 = MakeRequest(images[1], past);
  auto live = MakeRequest(images[2]);
  std::future<Server::Result> f1 = expired1->promise.get_future();
  std::future<Server::Result> f2 = expired2->promise.get_future();
  std::future<Server::Result> f3 = live->promise.get_future();
  THALI_CHECK_OK(queue.TryPush(std::move(expired1)));
  THALI_CHECK_OK(queue.TryPush(std::move(live)));
  THALI_CHECK_OK(queue.TryPush(std::move(expired2)));

  std::vector<RequestPtr> batch;
  ASSERT_TRUE(batcher.NextBatch(&batch));
  EXPECT_EQ(batch.size(), 1u);  // only the live request
  EXPECT_EQ(metrics.timed_out.load(), 2);

  // Expired futures are already completed with kDeadlineExceeded.
  Server::Result r1 = f1.get();
  Server::Result r2 = f2.get();
  EXPECT_EQ(r1.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(r2.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(f3.valid());  // live request still pending
  batch[0]->promise.set_value(std::vector<Detection>{});
  EXPECT_TRUE(f3.get().ok());
}

TEST(BatcherTest, ClosedEmptyQueueEndsBatching) {
  RequestQueue queue(4);
  ServerMetrics metrics;
  Batcher batcher(&queue, Batcher::Options{4, microseconds(1000)}, &metrics);
  queue.Close();
  std::vector<RequestPtr> batch;
  EXPECT_FALSE(batcher.NextBatch(&batch));
  EXPECT_TRUE(batch.empty());
}

// --------------------------------------------------------------- server --

TEST(ServerTest, ServedResultsBitwiseIdenticalToDirectDetectBatch) {
  const int kImages = 8;
  std::vector<Image> images = RenderImages(kImages);

  Server::Options opts;
  opts.num_workers = 1;
  opts.max_batch_size = 4;
  opts.max_linger = microseconds(2000);
  auto server_or = Server::Create(opts, StandardFactory(/*seed=*/7));
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  std::unique_ptr<Server> server = std::move(server_or).value();

  std::vector<std::future<Server::Result>> futures;
  for (const Image& img : images) {
    auto fut = server->Submit(img);
    ASSERT_TRUE(fut.ok()) << fut.status().ToString();
    futures.push_back(std::move(fut).value());
  }
  std::vector<std::vector<Detection>> served;
  for (auto& f : futures) {
    Server::Result r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    served.push_back(std::move(r).value());
  }
  server->Shutdown();

  // Same seed, same weights: direct DetectBatch over all 8 at once must
  // match the served results no matter how the batcher grouped them
  // (batch items never interact in inference).
  Detector direct = MakeDetector(/*seed=*/7);
  std::vector<std::vector<Detection>> expected = direct.DetectBatch(images);
  ASSERT_EQ(served.size(), expected.size());
  for (size_t i = 0; i < served.size(); ++i) {
    ExpectSameDetections(served[i], expected[i]);
  }

  const ServerMetrics& m = server->metrics();
  EXPECT_EQ(m.submitted.load(), kImages);
  EXPECT_EQ(m.completed.load(), kImages);
  EXPECT_EQ(m.rejected.load(), 0);
  EXPECT_EQ(m.timed_out.load(), 0);
  EXPECT_EQ(m.batched_images.load(), kImages);
  EXPECT_EQ(m.e2e_ms.count(), kImages);
}

TEST(ServerTest, ExpiredDeadlineCompletesWithoutRunningNetwork) {
  Server::Options opts;
  opts.num_workers = 1;
  auto server_or = Server::Create(opts, StandardFactory());
  ASSERT_TRUE(server_or.ok());
  std::unique_ptr<Server> server = std::move(server_or).value();

  // An already-expired absolute deadline: the worker must complete it with
  // kDeadlineExceeded without ever forming a batch.
  auto fut = server->Submit(RenderImages(1)[0],
                            ServeClock::now() - milliseconds(1));
  ASSERT_TRUE(fut.ok());
  Server::Result r = fut->get();
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  server->Shutdown();

  const ServerMetrics& m = server->metrics();
  EXPECT_EQ(m.timed_out.load(), 1);
  EXPECT_EQ(m.completed.load(), 0);
  EXPECT_EQ(m.batches.load(), 0);  // the network never ran
}

TEST(ServerTest, ShutdownDrainsEveryAcceptedFuture) {
  Server::Options opts;
  opts.num_workers = 2;
  opts.max_batch_size = 8;
  opts.max_linger = microseconds(50'000);
  opts.queue_capacity = 32;
  auto server_or = Server::Create(opts, StandardFactory());
  ASSERT_TRUE(server_or.ok());
  std::unique_ptr<Server> server = std::move(server_or).value();

  std::vector<Image> images = RenderImages(12);
  std::vector<std::future<Server::Result>> futures;
  for (Image& img : images) {
    auto fut = server->Submit(std::move(img));
    ASSERT_TRUE(fut.ok());
    futures.push_back(std::move(fut).value());
  }
  // Shutdown while batches may still be lingering: it must cut the linger
  // short and run (not drop) everything queued.
  server->Shutdown();
  int ok = 0;
  for (auto& f : futures) {
    if (f.get().ok()) ++ok;
  }
  EXPECT_EQ(ok, 12);
  const ServerMetrics& m = server->metrics();
  EXPECT_EQ(m.completed.load(), 12);
  EXPECT_EQ(m.submitted.load(),
            m.completed.load() + m.rejected.load() + m.timed_out.load());

  // Admission is closed after shutdown.
  auto rejected = server->Submit(RenderImages(1)[0]);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(server->metrics().rejected.load(), 1);
}

TEST(ServerTest, BackpressureRejectsWhenQueueFull) {
  Server::Options opts;
  opts.num_workers = 1;
  opts.queue_capacity = 1;
  opts.max_batch_size = 1;
  opts.max_linger = microseconds(0);
  auto server_or = Server::Create(opts, StandardFactory());
  ASSERT_TRUE(server_or.ok());
  std::unique_ptr<Server> server = std::move(server_or).value();

  // A capacity-1 queue behind a worker that needs milliseconds per forward
  // must reject a tight submission loop almost immediately.
  Image img = RenderImages(1)[0];
  std::vector<std::future<Server::Result>> accepted;
  bool saw_rejection = false;
  for (int i = 0; i < 1000 && !saw_rejection; ++i) {
    auto fut = server->Submit(img);
    if (fut.ok()) {
      accepted.push_back(std::move(fut).value());
    } else {
      EXPECT_EQ(fut.status().code(), StatusCode::kResourceExhausted);
      saw_rejection = true;
    }
  }
  EXPECT_TRUE(saw_rejection);
  server->Shutdown();
  for (auto& f : accepted) EXPECT_TRUE(f.get().ok());
  const ServerMetrics& m = server->metrics();
  EXPECT_EQ(m.submitted.load(),
            m.completed.load() + m.rejected.load() + m.timed_out.load());
  EXPECT_GE(m.rejected.load(), 1);
}

TEST(ServerTest, AdmissionShedsBatchClassBeforeInteractive) {
  Server::Options opts;
  opts.num_workers = 1;
  opts.queue_capacity = 4;
  opts.batch_queue_capacity = 4;
  opts.max_batch_size = 1;
  opts.max_linger = microseconds(0);
  opts.admission.enabled = true;
  opts.admission.shed_start = 0.0;  // shed pressure from the first queued item
  auto server_or = Server::Create(opts, StandardFactory());
  ASSERT_TRUE(server_or.ok());
  std::unique_ptr<Server> server = std::move(server_or).value();

  // A tight batch-class submission loop against a single worker that
  // needs milliseconds per forward: the shed policy must fire while the
  // batch lane still has free slots (depth-proportional, not lane-full).
  Image img = RenderImages(1)[0];
  Server::SubmitOptions batch_submit;
  batch_submit.priority = Priority::kBatch;
  std::vector<std::future<Server::Result>> accepted;
  bool saw_shed = false;
  for (int i = 0; i < 1000 && !saw_shed; ++i) {
    auto fut = server->Submit(img, batch_submit);
    if (fut.ok()) {
      accepted.push_back(std::move(fut).value());
    } else {
      EXPECT_EQ(fut.status().code(), StatusCode::kResourceExhausted);
      saw_shed = true;
      // Shed while below lane capacity — the policy, not TryPush, fired.
      EXPECT_LT(server->LaneDepth(Priority::kBatch),
                server->LaneCapacity(Priority::kBatch));
      // Batch work is shed strictly before interactive: an interactive
      // request submitted at this exact pressure is still admitted.
      auto interactive = server->Submit(img, Server::SubmitOptions{});
      EXPECT_TRUE(interactive.ok()) << interactive.status().ToString();
      if (interactive.ok()) accepted.push_back(std::move(interactive).value());
    }
  }
  EXPECT_TRUE(saw_shed);
  server->Shutdown();
  for (auto& f : accepted) EXPECT_TRUE(f.get().ok());

  const ServerMetrics& m = server->metrics();
  EXPECT_GE(m.shed_pressure.load(), 1);
  EXPECT_EQ(m.ForClass(Priority::kInteractive).shed.load(), 0);
  // Sheds are a refinement of rejected, never a fourth invariant leg.
  EXPECT_EQ(m.submitted.load(),
            m.completed.load() + m.rejected.load() + m.timed_out.load());
  EXPECT_LE(m.shed_pressure.load() + m.shed_deadline.load(),
            m.rejected.load());
}

TEST(ServerTest, AdmissionRejectsDeadlinesDoomedByQueueWait) {
  Server::Options opts;
  opts.num_workers = 1;
  opts.queue_capacity = 8;
  opts.max_batch_size = 1;
  opts.max_linger = microseconds(0);
  opts.admission.enabled = true;
  opts.admission.min_wait_samples = 8;
  auto server_or = Server::Create(opts, StandardFactory());
  ASSERT_TRUE(server_or.ok());
  std::unique_ptr<Server> server = std::move(server_or).value();
  Image img = RenderImages(1)[0];

  // Warm the queue-wait histogram with one open burst: the later requests
  // of the burst wait several forward-times in the queue, so p95 queue
  // wait lands in the milliseconds.
  std::vector<std::future<Server::Result>> warm;
  for (int i = 0; i < 8; ++i) {
    auto fut = server->Submit(img);
    if (fut.ok()) warm.push_back(std::move(fut).value());
  }
  for (auto& f : warm) (void)f.get();

  // Build a backlog, then ask for a microsecond-scale deadline budget:
  // the estimated wait (p95 scaled by depth) dwarfs it, so admission must
  // reject without ever queueing the request.
  bool saw_deadline_shed = false;
  std::vector<std::future<Server::Result>> accepted;
  for (int round = 0; round < 50 && !saw_deadline_shed; ++round) {
    for (int i = 0; i < 6; ++i) {
      auto fut = server->Submit(img);
      if (fut.ok()) accepted.push_back(std::move(fut).value());
    }
    for (int i = 0; i < 20; ++i) {
      auto fut = server->Submit(
          img, Server::SubmitOptions{ServeClock::now() + microseconds(50),
                                     Priority::kInteractive});
      if (!fut.ok() && fut.status().code() == StatusCode::kDeadlineExceeded) {
        saw_deadline_shed = true;
        break;
      }
      if (fut.ok()) accepted.push_back(std::move(fut).value());
    }
  }
  EXPECT_TRUE(saw_deadline_shed);
  server->Shutdown();
  for (auto& f : accepted) (void)f.get();

  const ServerMetrics& m = server->metrics();
  EXPECT_GE(m.shed_deadline.load(), 1);
  EXPECT_EQ(m.submitted.load(),
            m.completed.load() + m.rejected.load() + m.timed_out.load());
}

TEST(ServerTest, HotReloadSwapsWeightsWithoutDroppingRequests) {
  // Stage seed-9 weights on disk; the server starts from seed 7.
  const std::string path =
      testing::TempDir() + "/thali_serve_reload.weights";
  {
    Detector donor = MakeDetector(/*seed=*/9);
    THALI_CHECK_OK(SaveWeights(donor.network(), path));
  }

  Server::Options opts;
  opts.num_workers = 2;
  opts.queue_capacity = 16;
  opts.max_batch_size = 2;
  opts.max_linger = microseconds(500);
  auto server_or = Server::Create(opts, StandardFactory(/*seed=*/7));
  ASSERT_TRUE(server_or.ok());
  std::unique_ptr<Server> server = std::move(server_or).value();
  EXPECT_EQ(server->weights_generation(), 0);

  // Keep requests in flight across the swap; every future must resolve.
  std::vector<Image> images = RenderImages(10);
  std::vector<std::future<Server::Result>> futures;
  for (int i = 0; i < 5; ++i) {
    auto fut = server->Submit(Image(images[i]));
    ASSERT_TRUE(fut.ok());
    futures.push_back(std::move(fut).value());
  }
  THALI_CHECK_OK(server->ReloadWeights(path));
  EXPECT_EQ(server->weights_generation(), 1);
  for (int i = 5; i < 10; ++i) {
    auto fut = server->Submit(Image(images[i]));
    ASSERT_TRUE(fut.ok());
    futures.push_back(std::move(fut).value());
  }
  for (auto& f : futures) {
    Server::Result r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();  // zero dropped in-flight
  }

  // Both workers pass a batch boundary during the drain above or on the
  // probe below, so the swap lands; keep probing until the counter shows
  // at least one worker on the new weights.
  Image probe = RenderImages(1, /*seed=*/77)[0];
  std::vector<Detection> served;
  for (int i = 0; i < 50; ++i) {
    auto fut = server->Submit(Image(probe));
    ASSERT_TRUE(fut.ok());
    Server::Result r = fut->get();
    ASSERT_TRUE(r.ok());
    served = std::move(r).value();
    if (server->metrics().weight_reloads.load() >= 1) break;
  }
  EXPECT_GE(server->metrics().weight_reloads.load(), 1);
  server->Shutdown();
  EXPECT_LE(server->metrics().weight_reloads.load(), opts.num_workers);

  // The last probe ran on some worker; with both workers having crossed a
  // batch boundary post-reload during the 10-request drain, it must match
  // the seed-9 detector bitwise, proving the swap actually took effect.
  Detector reference = MakeDetector(/*seed=*/9);
  ExpectSameDetections(served, reference.Detect(probe));
}

// The ThreadSanitizer stress test the issue pins: >=4 producers, 2
// workers, bounded queue with live backpressure, every accepted request
// completed exactly once, accounting closed after drain.
TEST(ServerTest, StressProducersAndWorkersCompleteEveryRequestOnce) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 10;

  Server::Options opts;
  opts.num_workers = 2;
  opts.queue_capacity = 8;
  opts.max_batch_size = 4;
  opts.max_linger = microseconds(500);
  auto server_or = Server::Create(opts, StandardFactory());
  ASSERT_TRUE(server_or.ok());
  std::unique_ptr<Server> server = std::move(server_or).value();

  std::atomic<int> ok_results{0};
  std::atomic<int> producer_rejections{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<Image> images =
          RenderImages(kPerProducer, /*seed=*/100 + static_cast<uint64_t>(p));
      for (Image& img : images) {
        // Closed-loop with bounded retry: rejected submissions (observed
        // backpressure) back off and retry until accepted.
        for (;;) {
          auto fut = server->Submit(img);
          if (fut.ok()) {
            Server::Result r = fut->get();
            ASSERT_TRUE(r.ok()) << r.status().ToString();
            ok_results.fetch_add(1);
            break;
          }
          ASSERT_EQ(fut.status().code(), StatusCode::kResourceExhausted);
          producer_rejections.fetch_add(1);
          std::this_thread::sleep_for(microseconds(200));
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  server->Shutdown();

  EXPECT_EQ(ok_results.load(), kProducers * kPerProducer);
  const ServerMetrics& m = server->metrics();
  EXPECT_EQ(m.completed.load(), kProducers * kPerProducer);
  EXPECT_EQ(m.rejected.load(), producer_rejections.load());
  EXPECT_EQ(m.submitted.load(),
            m.completed.load() + m.rejected.load() + m.timed_out.load());
  EXPECT_EQ(m.batched_images.load(), m.completed.load());
  EXPECT_EQ(m.e2e_ms.count(), m.completed.load() + m.timed_out.load());
}

}  // namespace
}  // namespace serve
}  // namespace thali
