// Cross-module integration tests: train -> evaluate -> serialize ->
// detect, the SSD baseline, transfer loading, and the Fig. 3 pipeline.
// Kept intentionally tiny (seconds, not minutes): the benches carry the
// full-scale experiments.

#include <gtest/gtest.h>

#include "base/file_util.h"
#include "baseline/ssd_detector.h"
#include "core/detector.h"
#include "core/pipeline.h"
#include "core/trainer.h"
#include "darknet/model_zoo.h"
#include "darknet/weights_io.h"
#include "data/food_classes.h"

namespace thali {
namespace {

// Shared tiny dataset: 3 easy classes, small images would break the /32
// stride so stick to 96 but keep counts low.
FoodDataset TinyDataset(int images = 40) {
  DatasetSpec spec;
  spec.num_images = images;
  spec.seed = 777;
  return FoodDataset::Generate(IndianFood10(), spec);
}

YoloThaliOptions TinyYoloOptions(int iters) {
  YoloThaliOptions o;
  o.classes = 10;
  o.batch = 2;
  o.max_batches = iters;
  o.burn_in = 5;
  o.mosaic = false;
  return o;
}

TEST(TrainingIntegration, LossDecreasesOverTraining) {
  FoodDataset ds = TinyDataset(16);
  TransferTrainer::Options topts;
  topts.cfg_text = YoloThaliCfg(TinyYoloOptions(80));
  topts.log_every = 0;
  auto trainer_or = TransferTrainer::Create(topts);
  ASSERT_TRUE(trainer_or.ok()) << trainer_or.status().ToString();
  TransferTrainer trainer = std::move(trainer_or).value();

  // Per-iteration losses are noisy (each batch differs); compare window
  // averages between the start and the end of training.
  std::vector<double> losses;
  ASSERT_TRUE(trainer
                  .Train(ds, 120, 1,
                         [&](int) {
                           losses.push_back(trainer.last_loss().total);
                         })
                  .ok());
  ASSERT_EQ(losses.size(), 120u);
  double head = 0, tail = 0;
  for (int i = 0; i < 20; ++i) {
    head += losses[static_cast<size_t>(i)];
    tail += losses[losses.size() - 1 - static_cast<size_t>(i)];
  }
  EXPECT_LT(tail, head * 0.6) << "training did not reduce the loss";
}

TEST(TrainingIntegration, EvaluateProducesSaneMetrics) {
  FoodDataset ds = TinyDataset(30);
  TransferTrainer::Options topts;
  topts.cfg_text = YoloThaliCfg(TinyYoloOptions(60));
  topts.log_every = 0;
  auto trainer = TransferTrainer::Create(topts);
  ASSERT_TRUE(trainer.ok());
  ASSERT_TRUE(trainer->Train(ds, 60).ok());
  EvalResult r = trainer->Evaluate(ds, ds.val_indices());
  EXPECT_GE(r.map, 0.0f);
  EXPECT_LE(r.map, 1.0f);
  EXPECT_EQ(r.per_class.size(), 10u);
}

TEST(TrainingIntegration, DetectorRoundTripsThroughWeightsFile) {
  FoodDataset ds = TinyDataset(16);
  const std::string cfg = YoloThaliCfg(TinyYoloOptions(40));
  TransferTrainer::Options topts;
  topts.cfg_text = cfg;
  topts.log_every = 0;
  auto trainer = TransferTrainer::Create(topts);
  ASSERT_TRUE(trainer.ok());
  ASSERT_TRUE(trainer->Train(ds, 40).ok());

  const std::string scratch =
      JoinPath(testing::TempDir(), "thali_integration.weights");
  auto detector_or = trainer->MakeDetector(scratch);
  ASSERT_TRUE(detector_or.ok()) << detector_or.status().ToString();
  Detector detector = std::move(detector_or).value();

  // Same weights => identical detections from trainer-net and detector.
  const auto& item = ds.item(ds.val_indices()[0]);
  std::vector<Detection> via_detector =
      detector.Detect(item.image, 0.05f, 0.45f);
  // Compare against evaluating through the trainer's own network.
  std::vector<ImageEval> evals =
      CollectImageEvals(trainer->network(),
                        trainer->heads(), ds, {ds.val_indices()[0]}, 0.05f,
                        0.45f);
  ASSERT_EQ(evals.size(), 1u);
  ASSERT_EQ(via_detector.size(), evals[0].detections.size());
  for (size_t i = 0; i < via_detector.size(); ++i) {
    EXPECT_NEAR(via_detector[i].confidence, evals[0].detections[i].confidence,
                1e-4f);
    EXPECT_EQ(via_detector[i].class_id, evals[0].detections[i].class_id);
  }
  std::remove(scratch.c_str());
}

TEST(TrainingIntegration, FusedBatchNormKeepsDetections) {
  FoodDataset ds = TinyDataset(12);
  const std::string cfg = YoloThaliCfg(TinyYoloOptions(30));
  TransferTrainer::Options topts;
  topts.cfg_text = cfg;
  topts.log_every = 0;
  auto trainer = TransferTrainer::Create(topts);
  ASSERT_TRUE(trainer.ok());
  ASSERT_TRUE(trainer->Train(ds, 30).ok());
  const std::string scratch =
      JoinPath(testing::TempDir(), "thali_fuse.weights");
  auto det_or = trainer->MakeDetector(scratch);
  ASSERT_TRUE(det_or.ok());
  Detector det = std::move(det_or).value();

  const Image& img = ds.item(0).image;
  auto before = det.Detect(img, 0.05f, 0.45f);
  det.FuseBatchNorm();
  auto after = det.Detect(img, 0.05f, 0.45f);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(before[i].confidence, after[i].confidence, 1e-3f);
    EXPECT_EQ(before[i].class_id, after[i].class_id);
  }
  std::remove(scratch.c_str());
}

TEST(TrainingIntegration, TransferLoadInitializesBackboneOnly) {
  // Pretrain 2 iterations on the shapes task, save the backbone, reload
  // into a 10-class net: backbone convs must match, heads must not.
  const std::string dir = JoinPath(testing::TempDir(), "thali_transfer");
  ASSERT_TRUE(MakeDirs(dir).ok());
  auto backbone = PretrainBackbone(dir, /*iterations=*/2, 96, 3);
  ASSERT_TRUE(backbone.ok()) << backbone.status().ToString();

  TransferTrainer::Options topts;
  topts.cfg_text = YoloThaliCfg(TinyYoloOptions(10));
  topts.pretrained_weights = *backbone;
  topts.transfer_cutoff = kYoloThaliBackboneCutoff;
  topts.freeze_cutoff = kYoloThaliBackboneCutoff;
  topts.log_every = 0;
  auto trainer = TransferTrainer::Create(topts);
  ASSERT_TRUE(trainer.ok()) << trainer.status().ToString();
  // Frozen layers report frozen; head layers do not.
  EXPECT_TRUE(trainer->network().layer(0).frozen());
  EXPECT_FALSE(
      trainer->network().layer(kYoloThaliBackboneCutoff + 1).frozen());
}

TEST(BaselineIntegration, SsdTrainsAndEvaluates) {
  FoodDataset ds = TinyDataset(20);
  Rng rng(21);
  auto baseline =
      BuildSsdBaseline(10, 96, 96, 2, BaselineTier::kModern, rng);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  std::vector<DetectionHead*> heads = {baseline->head};
  SgdOptimizer::Options so;
  so.lr.base_lr = 1e-3f;
  so.lr.burn_in = 5;
  SgdOptimizer opt(so);
  TrainLoopOptions lo;
  lo.iterations = 40;
  lo.log_every = 0;
  lo.augment.mosaic = false;
  lo.augment.jitter = 0.0f;
  lo.augment.hue = 0.0f;
  lo.augment.saturation = 1.0f;
  lo.augment.exposure = 1.0f;
  HeadLossStats last = RunTrainingLoop(*baseline->net, heads, ds,
                                       ds.train_indices(), opt, lo);
  EXPECT_GT(last.total, 0.0);

  EvalOptions eo;
  EvalResult r =
      EvaluateDetections(*baseline->net, heads, ds, ds.val_indices(), 10, eo);
  EXPECT_GE(r.map, 0.0f);
  EXPECT_LE(r.map, 1.0f);
}

TEST(PipelineIntegration, RunsEndToEnd) {
  Pipeline::Options popts;
  popts.num_classes = 10;
  popts.dataset.num_images = 24;
  popts.pretrain_iterations = 4;
  popts.finetune_iterations = 8;
  popts.work_dir = JoinPath(testing::TempDir(), "thali_pipeline");
  popts.log_every = 0;
  Pipeline pipeline(popts);
  auto report = pipeline.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->selected_classes.size(), 10u);
  EXPECT_EQ(report->dataset_stats.num_images, 24);
  EXPECT_GE(report->stages.size(), 6u);
  EXPECT_TRUE(PathExists(report->weights_path));
}

}  // namespace
}  // namespace thali
