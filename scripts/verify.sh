#!/usr/bin/env bash
# Full verification sweep: tier-1 build + tests, then the sanitizer
# smoke suites in separate build trees. This is what CI (and a human
# before merging) should run; tier-1 alone is the merge gate, the
# sanitizer passes catch the data-race / memory-hazard classes that
# plain test runs cannot.
#
#   scripts/verify.sh            # tier-1 + int8 smoke + tsan/asan smoke
#   scripts/verify.sh --tier1    # tier-1 only
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
TIER1_ONLY=0
[[ "${1:-}" == "--tier1" ]] && TIER1_ONLY=1

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "== int8 smoke: quantization conformance suite =="
ctest --test-dir build --output-on-failure -j "${JOBS}" -L int8_smoke

echo "== net smoke: THL1 protocol + loopback end-to-end suite =="
# Framing round-trips, split-point reassembly, hostile-frame rejection,
# and the socket-path ≡ in-process bitwise pin (tests/net).
ctest --test-dir build --output-on-failure -j "${JOBS}" -L net_smoke

echo "== prepost smoke: pre/post fast-path parity suite =="
# Letterbox bitwise pin (scalar family), fused letterbox-quantize byte
# contract, raw-decode and fast-NMS exact-equivalence pins, and the
# Detect stability pin across THALI_NO_FASTPRE (tests/prepost).
ctest --test-dir build --output-on-failure -j "${JOBS}" -L prepost_smoke

echo "== int8 chained-edge gate: calibrated yolov4-thali must chain =="
# End-to-end THALI_INT8=1 forward on the fused plan; the test fails if
# the compiled plan reports zero chained edges, fewer than 49 quantized
# layers, or a cold (fp32) network input on yolov4-thali after
# calibration + replan.
THALI_INT8=1 ./build/tests/int8/int8_test \
  --gtest_filter='Int8Test.ReplanAfterCalibrationChainsMajorityOfThali'

if [[ "${TIER1_ONLY}" == "1" ]]; then
  echo "verify: tier-1 PASS (sanitizer suites skipped)"
  exit 0
fi

echo "== tsan smoke: threading-heavy tests under ThreadSanitizer =="
cmake -B build-tsan -S . -DTHALI_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${JOBS}"
ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" -L tsan_smoke

echo "== asan smoke: fused-plan / kernel-edge tests under ASan+UBSan =="
cmake -B build-asan -S . -DTHALI_SANITIZE=address >/dev/null
cmake --build build-asan -j "${JOBS}"
ctest --test-dir build-asan --output-on-failure -j "${JOBS}" -L asan_smoke

echo "verify: ALL PASS (tier-1 + tsan_smoke + asan_smoke)"
