# Empty compiler generated dependencies file for darknet_test.
# This may be replaced when dependencies are built.
