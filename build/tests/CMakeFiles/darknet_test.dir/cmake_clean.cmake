file(REMOVE_RECURSE
  "CMakeFiles/darknet_test.dir/darknet_test.cc.o"
  "CMakeFiles/darknet_test.dir/darknet_test.cc.o.d"
  "darknet_test"
  "darknet_test.pdb"
  "darknet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darknet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
