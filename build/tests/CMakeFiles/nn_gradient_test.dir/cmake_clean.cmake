file(REMOVE_RECURSE
  "CMakeFiles/nn_gradient_test.dir/nn_gradient_test.cc.o"
  "CMakeFiles/nn_gradient_test.dir/nn_gradient_test.cc.o.d"
  "nn_gradient_test"
  "nn_gradient_test.pdb"
  "nn_gradient_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_gradient_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
