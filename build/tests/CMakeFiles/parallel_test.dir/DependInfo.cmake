
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/parallel_test.cc" "tests/CMakeFiles/parallel_test.dir/parallel_test.cc.o" "gcc" "tests/CMakeFiles/parallel_test.dir/parallel_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/thali_core.dir/DependInfo.cmake"
  "/root/repo/build/src/darknet/CMakeFiles/thali_darknet.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/thali_data.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/thali_image.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/thali_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/thali_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/thali_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/thali_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/thali_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
