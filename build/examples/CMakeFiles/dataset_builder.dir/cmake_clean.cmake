file(REMOVE_RECURSE
  "CMakeFiles/dataset_builder.dir/dataset_builder.cpp.o"
  "CMakeFiles/dataset_builder.dir/dataset_builder.cpp.o.d"
  "dataset_builder"
  "dataset_builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
