# Empty compiler generated dependencies file for train_custom.
# This may be replaced when dependencies are built.
