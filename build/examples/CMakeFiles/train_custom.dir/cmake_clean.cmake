file(REMOVE_RECURSE
  "CMakeFiles/train_custom.dir/train_custom.cpp.o"
  "CMakeFiles/train_custom.dir/train_custom.cpp.o.d"
  "train_custom"
  "train_custom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_custom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
