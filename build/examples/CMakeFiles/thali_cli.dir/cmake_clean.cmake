file(REMOVE_RECURSE
  "CMakeFiles/thali_cli.dir/thali_cli.cpp.o"
  "CMakeFiles/thali_cli.dir/thali_cli.cpp.o.d"
  "thali_cli"
  "thali_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thali_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
