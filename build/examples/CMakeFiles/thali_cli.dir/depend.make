# Empty dependencies file for thali_cli.
# This may be replaced when dependencies are built.
