file(REMOVE_RECURSE
  "CMakeFiles/thali_scanner.dir/thali_scanner.cpp.o"
  "CMakeFiles/thali_scanner.dir/thali_scanner.cpp.o.d"
  "thali_scanner"
  "thali_scanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thali_scanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
