# Empty dependencies file for thali_scanner.
# This may be replaced when dependencies are built.
