file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_confusion.dir/bench_fig5_confusion.cc.o"
  "CMakeFiles/bench_fig5_confusion.dir/bench_fig5_confusion.cc.o.d"
  "bench_fig5_confusion"
  "bench_fig5_confusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_confusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
