file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_class_ap.dir/bench_table1_class_ap.cc.o"
  "CMakeFiles/bench_table1_class_ap.dir/bench_table1_class_ap.cc.o.d"
  "bench_table1_class_ap"
  "bench_table1_class_ap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_class_ap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
