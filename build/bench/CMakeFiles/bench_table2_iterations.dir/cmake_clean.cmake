file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_iterations.dir/bench_table2_iterations.cc.o"
  "CMakeFiles/bench_table2_iterations.dir/bench_table2_iterations.cc.o.d"
  "bench_table2_iterations"
  "bench_table2_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
