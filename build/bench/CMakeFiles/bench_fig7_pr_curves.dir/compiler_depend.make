# Empty compiler generated dependencies file for bench_fig7_pr_curves.
# This may be replaced when dependencies are built.
