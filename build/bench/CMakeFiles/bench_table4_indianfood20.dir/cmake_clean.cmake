file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_indianfood20.dir/bench_table4_indianfood20.cc.o"
  "CMakeFiles/bench_table4_indianfood20.dir/bench_table4_indianfood20.cc.o.d"
  "bench_table4_indianfood20"
  "bench_table4_indianfood20.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_indianfood20.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
