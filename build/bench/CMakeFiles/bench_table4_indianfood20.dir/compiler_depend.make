# Empty compiler generated dependencies file for bench_table4_indianfood20.
# This may be replaced when dependencies are built.
