file(REMOVE_RECURSE
  "libthali_bench_common.a"
)
