# Empty compiler generated dependencies file for thali_bench_common.
# This may be replaced when dependencies are built.
