file(REMOVE_RECURSE
  "CMakeFiles/thali_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/thali_bench_common.dir/bench_common.cc.o.d"
  "libthali_bench_common.a"
  "libthali_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thali_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
