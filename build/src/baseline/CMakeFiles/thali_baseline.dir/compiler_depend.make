# Empty compiler generated dependencies file for thali_baseline.
# This may be replaced when dependencies are built.
