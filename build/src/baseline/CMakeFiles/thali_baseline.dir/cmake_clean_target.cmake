file(REMOVE_RECURSE
  "libthali_baseline.a"
)
