file(REMOVE_RECURSE
  "CMakeFiles/thali_baseline.dir/ssd_detector.cc.o"
  "CMakeFiles/thali_baseline.dir/ssd_detector.cc.o.d"
  "CMakeFiles/thali_baseline.dir/ssd_head_layer.cc.o"
  "CMakeFiles/thali_baseline.dir/ssd_head_layer.cc.o.d"
  "libthali_baseline.a"
  "libthali_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thali_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
