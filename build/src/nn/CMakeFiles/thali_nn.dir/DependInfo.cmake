
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cc" "src/nn/CMakeFiles/thali_nn.dir/activation.cc.o" "gcc" "src/nn/CMakeFiles/thali_nn.dir/activation.cc.o.d"
  "/root/repo/src/nn/conv_layer.cc" "src/nn/CMakeFiles/thali_nn.dir/conv_layer.cc.o" "gcc" "src/nn/CMakeFiles/thali_nn.dir/conv_layer.cc.o.d"
  "/root/repo/src/nn/gradient_check.cc" "src/nn/CMakeFiles/thali_nn.dir/gradient_check.cc.o" "gcc" "src/nn/CMakeFiles/thali_nn.dir/gradient_check.cc.o.d"
  "/root/repo/src/nn/maxpool_layer.cc" "src/nn/CMakeFiles/thali_nn.dir/maxpool_layer.cc.o" "gcc" "src/nn/CMakeFiles/thali_nn.dir/maxpool_layer.cc.o.d"
  "/root/repo/src/nn/network.cc" "src/nn/CMakeFiles/thali_nn.dir/network.cc.o" "gcc" "src/nn/CMakeFiles/thali_nn.dir/network.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/thali_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/thali_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/route_layer.cc" "src/nn/CMakeFiles/thali_nn.dir/route_layer.cc.o" "gcc" "src/nn/CMakeFiles/thali_nn.dir/route_layer.cc.o.d"
  "/root/repo/src/nn/shortcut_layer.cc" "src/nn/CMakeFiles/thali_nn.dir/shortcut_layer.cc.o" "gcc" "src/nn/CMakeFiles/thali_nn.dir/shortcut_layer.cc.o.d"
  "/root/repo/src/nn/upsample_layer.cc" "src/nn/CMakeFiles/thali_nn.dir/upsample_layer.cc.o" "gcc" "src/nn/CMakeFiles/thali_nn.dir/upsample_layer.cc.o.d"
  "/root/repo/src/nn/yolo_layer.cc" "src/nn/CMakeFiles/thali_nn.dir/yolo_layer.cc.o" "gcc" "src/nn/CMakeFiles/thali_nn.dir/yolo_layer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/thali_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/thali_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/thali_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
