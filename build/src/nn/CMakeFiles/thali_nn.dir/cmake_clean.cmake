file(REMOVE_RECURSE
  "CMakeFiles/thali_nn.dir/activation.cc.o"
  "CMakeFiles/thali_nn.dir/activation.cc.o.d"
  "CMakeFiles/thali_nn.dir/conv_layer.cc.o"
  "CMakeFiles/thali_nn.dir/conv_layer.cc.o.d"
  "CMakeFiles/thali_nn.dir/gradient_check.cc.o"
  "CMakeFiles/thali_nn.dir/gradient_check.cc.o.d"
  "CMakeFiles/thali_nn.dir/maxpool_layer.cc.o"
  "CMakeFiles/thali_nn.dir/maxpool_layer.cc.o.d"
  "CMakeFiles/thali_nn.dir/network.cc.o"
  "CMakeFiles/thali_nn.dir/network.cc.o.d"
  "CMakeFiles/thali_nn.dir/optimizer.cc.o"
  "CMakeFiles/thali_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/thali_nn.dir/route_layer.cc.o"
  "CMakeFiles/thali_nn.dir/route_layer.cc.o.d"
  "CMakeFiles/thali_nn.dir/shortcut_layer.cc.o"
  "CMakeFiles/thali_nn.dir/shortcut_layer.cc.o.d"
  "CMakeFiles/thali_nn.dir/upsample_layer.cc.o"
  "CMakeFiles/thali_nn.dir/upsample_layer.cc.o.d"
  "CMakeFiles/thali_nn.dir/yolo_layer.cc.o"
  "CMakeFiles/thali_nn.dir/yolo_layer.cc.o.d"
  "libthali_nn.a"
  "libthali_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thali_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
