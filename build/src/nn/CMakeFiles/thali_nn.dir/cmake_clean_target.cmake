file(REMOVE_RECURSE
  "libthali_nn.a"
)
