# Empty compiler generated dependencies file for thali_nn.
# This may be replaced when dependencies are built.
