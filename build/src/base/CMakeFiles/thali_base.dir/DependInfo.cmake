
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/file_util.cc" "src/base/CMakeFiles/thali_base.dir/file_util.cc.o" "gcc" "src/base/CMakeFiles/thali_base.dir/file_util.cc.o.d"
  "/root/repo/src/base/logging.cc" "src/base/CMakeFiles/thali_base.dir/logging.cc.o" "gcc" "src/base/CMakeFiles/thali_base.dir/logging.cc.o.d"
  "/root/repo/src/base/rng.cc" "src/base/CMakeFiles/thali_base.dir/rng.cc.o" "gcc" "src/base/CMakeFiles/thali_base.dir/rng.cc.o.d"
  "/root/repo/src/base/status.cc" "src/base/CMakeFiles/thali_base.dir/status.cc.o" "gcc" "src/base/CMakeFiles/thali_base.dir/status.cc.o.d"
  "/root/repo/src/base/string_util.cc" "src/base/CMakeFiles/thali_base.dir/string_util.cc.o" "gcc" "src/base/CMakeFiles/thali_base.dir/string_util.cc.o.d"
  "/root/repo/src/base/table_printer.cc" "src/base/CMakeFiles/thali_base.dir/table_printer.cc.o" "gcc" "src/base/CMakeFiles/thali_base.dir/table_printer.cc.o.d"
  "/root/repo/src/base/thread_pool.cc" "src/base/CMakeFiles/thali_base.dir/thread_pool.cc.o" "gcc" "src/base/CMakeFiles/thali_base.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
