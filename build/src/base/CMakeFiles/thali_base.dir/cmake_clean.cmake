file(REMOVE_RECURSE
  "CMakeFiles/thali_base.dir/file_util.cc.o"
  "CMakeFiles/thali_base.dir/file_util.cc.o.d"
  "CMakeFiles/thali_base.dir/logging.cc.o"
  "CMakeFiles/thali_base.dir/logging.cc.o.d"
  "CMakeFiles/thali_base.dir/rng.cc.o"
  "CMakeFiles/thali_base.dir/rng.cc.o.d"
  "CMakeFiles/thali_base.dir/status.cc.o"
  "CMakeFiles/thali_base.dir/status.cc.o.d"
  "CMakeFiles/thali_base.dir/string_util.cc.o"
  "CMakeFiles/thali_base.dir/string_util.cc.o.d"
  "CMakeFiles/thali_base.dir/table_printer.cc.o"
  "CMakeFiles/thali_base.dir/table_printer.cc.o.d"
  "CMakeFiles/thali_base.dir/thread_pool.cc.o"
  "CMakeFiles/thali_base.dir/thread_pool.cc.o.d"
  "libthali_base.a"
  "libthali_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thali_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
