# Empty dependencies file for thali_base.
# This may be replaced when dependencies are built.
