# Empty compiler generated dependencies file for thali_base.
# This may be replaced when dependencies are built.
