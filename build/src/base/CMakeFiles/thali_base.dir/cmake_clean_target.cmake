file(REMOVE_RECURSE
  "libthali_base.a"
)
