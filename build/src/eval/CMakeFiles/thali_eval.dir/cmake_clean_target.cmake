file(REMOVE_RECURSE
  "libthali_eval.a"
)
