file(REMOVE_RECURSE
  "CMakeFiles/thali_eval.dir/box.cc.o"
  "CMakeFiles/thali_eval.dir/box.cc.o.d"
  "CMakeFiles/thali_eval.dir/detection.cc.o"
  "CMakeFiles/thali_eval.dir/detection.cc.o.d"
  "CMakeFiles/thali_eval.dir/metrics.cc.o"
  "CMakeFiles/thali_eval.dir/metrics.cc.o.d"
  "CMakeFiles/thali_eval.dir/report.cc.o"
  "CMakeFiles/thali_eval.dir/report.cc.o.d"
  "libthali_eval.a"
  "libthali_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thali_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
