# Empty compiler generated dependencies file for thali_eval.
# This may be replaced when dependencies are built.
