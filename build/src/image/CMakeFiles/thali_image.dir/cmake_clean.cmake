file(REMOVE_RECURSE
  "CMakeFiles/thali_image.dir/draw.cc.o"
  "CMakeFiles/thali_image.dir/draw.cc.o.d"
  "CMakeFiles/thali_image.dir/image.cc.o"
  "CMakeFiles/thali_image.dir/image.cc.o.d"
  "CMakeFiles/thali_image.dir/image_io.cc.o"
  "CMakeFiles/thali_image.dir/image_io.cc.o.d"
  "libthali_image.a"
  "libthali_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thali_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
