# Empty compiler generated dependencies file for thali_image.
# This may be replaced when dependencies are built.
