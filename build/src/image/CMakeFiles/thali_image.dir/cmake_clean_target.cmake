file(REMOVE_RECURSE
  "libthali_image.a"
)
