file(REMOVE_RECURSE
  "CMakeFiles/thali_darknet.dir/cfg.cc.o"
  "CMakeFiles/thali_darknet.dir/cfg.cc.o.d"
  "CMakeFiles/thali_darknet.dir/model_zoo.cc.o"
  "CMakeFiles/thali_darknet.dir/model_zoo.cc.o.d"
  "CMakeFiles/thali_darknet.dir/summary.cc.o"
  "CMakeFiles/thali_darknet.dir/summary.cc.o.d"
  "CMakeFiles/thali_darknet.dir/weights_io.cc.o"
  "CMakeFiles/thali_darknet.dir/weights_io.cc.o.d"
  "libthali_darknet.a"
  "libthali_darknet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thali_darknet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
