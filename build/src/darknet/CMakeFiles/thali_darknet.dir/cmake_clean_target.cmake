file(REMOVE_RECURSE
  "libthali_darknet.a"
)
