# Empty dependencies file for thali_darknet.
# This may be replaced when dependencies are built.
