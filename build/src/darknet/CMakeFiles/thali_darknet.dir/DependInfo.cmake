
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/darknet/cfg.cc" "src/darknet/CMakeFiles/thali_darknet.dir/cfg.cc.o" "gcc" "src/darknet/CMakeFiles/thali_darknet.dir/cfg.cc.o.d"
  "/root/repo/src/darknet/model_zoo.cc" "src/darknet/CMakeFiles/thali_darknet.dir/model_zoo.cc.o" "gcc" "src/darknet/CMakeFiles/thali_darknet.dir/model_zoo.cc.o.d"
  "/root/repo/src/darknet/summary.cc" "src/darknet/CMakeFiles/thali_darknet.dir/summary.cc.o" "gcc" "src/darknet/CMakeFiles/thali_darknet.dir/summary.cc.o.d"
  "/root/repo/src/darknet/weights_io.cc" "src/darknet/CMakeFiles/thali_darknet.dir/weights_io.cc.o" "gcc" "src/darknet/CMakeFiles/thali_darknet.dir/weights_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/thali_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/thali_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/thali_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/thali_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
