file(REMOVE_RECURSE
  "CMakeFiles/thali_core.dir/detector.cc.o"
  "CMakeFiles/thali_core.dir/detector.cc.o.d"
  "CMakeFiles/thali_core.dir/pipeline.cc.o"
  "CMakeFiles/thali_core.dir/pipeline.cc.o.d"
  "CMakeFiles/thali_core.dir/trainer.cc.o"
  "CMakeFiles/thali_core.dir/trainer.cc.o.d"
  "libthali_core.a"
  "libthali_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thali_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
