# Empty compiler generated dependencies file for thali_core.
# This may be replaced when dependencies are built.
