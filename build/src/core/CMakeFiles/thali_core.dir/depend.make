# Empty dependencies file for thali_core.
# This may be replaced when dependencies are built.
