file(REMOVE_RECURSE
  "libthali_core.a"
)
