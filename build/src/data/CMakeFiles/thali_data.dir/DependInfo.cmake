
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/annotation.cc" "src/data/CMakeFiles/thali_data.dir/annotation.cc.o" "gcc" "src/data/CMakeFiles/thali_data.dir/annotation.cc.o.d"
  "/root/repo/src/data/augment.cc" "src/data/CMakeFiles/thali_data.dir/augment.cc.o" "gcc" "src/data/CMakeFiles/thali_data.dir/augment.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/thali_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/thali_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/food_classes.cc" "src/data/CMakeFiles/thali_data.dir/food_classes.cc.o" "gcc" "src/data/CMakeFiles/thali_data.dir/food_classes.cc.o.d"
  "/root/repo/src/data/hashtag_catalog.cc" "src/data/CMakeFiles/thali_data.dir/hashtag_catalog.cc.o" "gcc" "src/data/CMakeFiles/thali_data.dir/hashtag_catalog.cc.o.d"
  "/root/repo/src/data/nutrition.cc" "src/data/CMakeFiles/thali_data.dir/nutrition.cc.o" "gcc" "src/data/CMakeFiles/thali_data.dir/nutrition.cc.o.d"
  "/root/repo/src/data/renderer.cc" "src/data/CMakeFiles/thali_data.dir/renderer.cc.o" "gcc" "src/data/CMakeFiles/thali_data.dir/renderer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/image/CMakeFiles/thali_image.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/thali_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/thali_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/thali_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/thali_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
