# Empty dependencies file for thali_data.
# This may be replaced when dependencies are built.
