file(REMOVE_RECURSE
  "libthali_data.a"
)
