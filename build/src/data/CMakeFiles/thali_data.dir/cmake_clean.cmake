file(REMOVE_RECURSE
  "CMakeFiles/thali_data.dir/annotation.cc.o"
  "CMakeFiles/thali_data.dir/annotation.cc.o.d"
  "CMakeFiles/thali_data.dir/augment.cc.o"
  "CMakeFiles/thali_data.dir/augment.cc.o.d"
  "CMakeFiles/thali_data.dir/dataset.cc.o"
  "CMakeFiles/thali_data.dir/dataset.cc.o.d"
  "CMakeFiles/thali_data.dir/food_classes.cc.o"
  "CMakeFiles/thali_data.dir/food_classes.cc.o.d"
  "CMakeFiles/thali_data.dir/hashtag_catalog.cc.o"
  "CMakeFiles/thali_data.dir/hashtag_catalog.cc.o.d"
  "CMakeFiles/thali_data.dir/nutrition.cc.o"
  "CMakeFiles/thali_data.dir/nutrition.cc.o.d"
  "CMakeFiles/thali_data.dir/renderer.cc.o"
  "CMakeFiles/thali_data.dir/renderer.cc.o.d"
  "libthali_data.a"
  "libthali_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thali_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
