# Empty dependencies file for thali_tensor.
# This may be replaced when dependencies are built.
