file(REMOVE_RECURSE
  "CMakeFiles/thali_tensor.dir/gemm.cc.o"
  "CMakeFiles/thali_tensor.dir/gemm.cc.o.d"
  "CMakeFiles/thali_tensor.dir/im2col.cc.o"
  "CMakeFiles/thali_tensor.dir/im2col.cc.o.d"
  "CMakeFiles/thali_tensor.dir/ops.cc.o"
  "CMakeFiles/thali_tensor.dir/ops.cc.o.d"
  "CMakeFiles/thali_tensor.dir/shape.cc.o"
  "CMakeFiles/thali_tensor.dir/shape.cc.o.d"
  "libthali_tensor.a"
  "libthali_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thali_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
