file(REMOVE_RECURSE
  "libthali_tensor.a"
)
